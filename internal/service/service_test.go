package service

import (
	"github.com/eda-go/adifo/internal/obs"
	"testing"
	"time"

	"github.com/eda-go/adifo/internal/benchdata"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/fsim"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/prng"
)

func waitDone(t *testing.T, s *Service, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, ok := s.Status(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(time.Millisecond)
	}
}

// directRun reproduces what the service should compute, via the
// library, for a named circuit and random patterns.
func directRun(t *testing.T, name string, n int, seed uint64, opts fsim.Options) (*fault.List, *fsim.Result) {
	t.Helper()
	c, err := benchdata.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	fl := fault.CollapsedUniverse(c)
	ps := logic.RandomPatterns(c.NumInputs(), n, prng.New(seed))
	return fl, fsim.Run(fl, ps, opts)
}

func TestJobMatchesDirectLibraryRun(t *testing.T) {
	s := New(Config{Logger: obs.Nop()})
	defer s.Close()
	for _, tc := range []struct {
		mode string
		n    int
		opts fsim.Options
	}{
		{"nodrop", 0, fsim.Options{Mode: fsim.NoDrop}},
		{"drop", 0, fsim.Options{Mode: fsim.Drop}},
		{"ndetect", 2, fsim.Options{Mode: fsim.NDetect, N: 2}},
	} {
		id, err := s.Submit(JobSpec{
			Circuit:  "c17",
			Patterns: PatternSpec{Random: &RandomSpec{N: 200, Seed: 7}},
			Mode:     tc.mode,
			N:        tc.n,
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.mode, err)
		}
		st := waitDone(t, s, id)
		if st.State != StateDone {
			t.Fatalf("%s: job failed: %s", tc.mode, st.Error)
		}
		res, err := s.Result(id)
		if err != nil {
			t.Fatal(err)
		}

		fl, want := directRun(t, "c17", 200, 7, tc.opts)
		if res.Faults != fl.Len() || res.Detected != want.DetectedCount() ||
			res.VectorsUsed != want.VectorsUsed {
			t.Fatalf("%s: summary mismatch: %+v", tc.mode, res)
		}
		if len(res.Ndet) != len(want.Ndet) {
			t.Fatalf("%s: ndet length %d vs %d", tc.mode, len(res.Ndet), len(want.Ndet))
		}
		for u := range want.Ndet {
			if res.Ndet[u] != want.Ndet[u] {
				t.Fatalf("%s: ndet(%d) %d vs %d", tc.mode, u, res.Ndet[u], want.Ndet[u])
			}
		}
		for fi := range fl.Faults {
			fr := res.PerFault[fi]
			if fr.DetCount != want.DetCount[fi] || fr.FirstDet != want.FirstDet[fi] {
				t.Fatalf("%s fault %d: got (%d,%d), want (%d,%d)", tc.mode, fi,
					fr.DetCount, fr.FirstDet, want.DetCount[fi], want.FirstDet[fi])
			}
			if want.Det != nil {
				wantIdx := want.Det[fi].Indices()
				if len(fr.Det) != len(wantIdx) {
					t.Fatalf("%s fault %d: det set size %d vs %d", tc.mode, fi, len(fr.Det), len(wantIdx))
				}
				for k := range wantIdx {
					if fr.Det[k] != wantIdx[k] {
						t.Fatalf("%s fault %d: det[%d] = %d, want %d", tc.mode, fi, k, fr.Det[k], wantIdx[k])
					}
				}
			} else if fr.Det != nil {
				t.Fatalf("%s fault %d: unexpected det set in drop mode", tc.mode, fi)
			}
		}
	}
}

func TestRepeatSubmissionHitsCaches(t *testing.T) {
	s := New(Config{Logger: obs.Nop()})
	defer s.Close()
	spec := JobSpec{
		Circuit:  "lion",
		Patterns: PatternSpec{Exhaustive: true},
		Mode:     "nodrop",
	}
	for i := 0; i < 3; i++ {
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if st := waitDone(t, s, id); st.State != StateDone {
			t.Fatalf("run %d failed: %s", i, st.Error)
		}
	}
	st := s.Stats()
	if st.Registry.CircuitMisses != 1 || st.Registry.CircuitHits != 2 {
		t.Fatalf("circuit cache: %+v, want 1 miss / 2 hits", st.Registry)
	}
	if st.Registry.GoodMisses != 1 || st.Registry.GoodHits != 2 {
		t.Fatalf("good cache: %+v, want 1 miss / 2 hits", st.Registry)
	}
	if st.JobsDone != 3 || st.JobsFailed != 0 {
		t.Fatalf("job counters: %+v", st)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := New(Config{Logger: obs.Nop()})
	defer s.Close()
	bad := []JobSpec{
		{},                               // no circuit
		{Circuit: "c17"},                 // no patterns
		{Circuit: "c17", Bench: "x = y"}, // ambiguous circuit
		{Circuit: "c17", Patterns: PatternSpec{Random: &RandomSpec{N: 0}}},                   // n <= 0
		{Circuit: "c17", Patterns: PatternSpec{Random: &RandomSpec{N: 8}, Exhaustive: true}}, // two pattern kinds
		{Circuit: "c17", Patterns: PatternSpec{Random: &RandomSpec{N: 8}}, Mode: "bogus"},
		{Circuit: "c17", Patterns: PatternSpec{Random: &RandomSpec{N: 8}}, Mode: "ndetect"},    // missing n
		{Circuit: "c17", Patterns: PatternSpec{Random: &RandomSpec{N: 8}}, Mode: "drop", N: 3}, // n without ndetect
		{Circuit: "c17", Patterns: PatternSpec{Vectors: []string{"01"}}, Mode: "nodrop"},       // width checked at run time...
	}
	for i, spec := range bad[:len(bad)-1] {
		if _, err := s.Submit(spec); err == nil {
			t.Fatalf("spec %d accepted: %+v", i, spec)
		}
	}
	// Wrong vector width is only discoverable after circuit resolution:
	// it must surface as a failed job, not a hung one.
	id, err := s.Submit(bad[len(bad)-1])
	if err != nil {
		t.Fatalf("vector-width spec rejected synchronously: %v", err)
	}
	st := waitDone(t, s, id)
	if st.State != StateFailed || st.Error == "" {
		t.Fatalf("want failed job with error, got %+v", st)
	}
	if _, err := s.Result(id); err == nil {
		t.Fatal("Result on failed job must error")
	}
}

func TestUnknownCircuitFailsJob(t *testing.T) {
	s := New(Config{Logger: obs.Nop()})
	defer s.Close()
	id, err := s.Submit(JobSpec{
		Circuit:  "no-such-circuit",
		Patterns: PatternSpec{Random: &RandomSpec{N: 8, Seed: 1}},
		Mode:     "nodrop",
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, s, id); st.State != StateFailed {
		t.Fatalf("want failed, got %+v", st)
	}
}

// TestJobRetention checks that finished jobs are evicted oldest-first
// once the retained set exceeds the bound, so server memory does not
// grow with lifetime request count.
func TestJobRetention(t *testing.T) {
	s := New(Config{Logger: obs.Nop(), MaxRetainedJobs: 3})
	defer s.Close()
	spec := JobSpec{Circuit: "lion", Patterns: PatternSpec{Exhaustive: true}, Mode: "nodrop"}
	var ids []string
	for i := 0; i < 6; i++ {
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		// Finish each job before the next submission so eviction has
		// terminal jobs to reclaim.
		if st := waitDone(t, s, id); st.State != StateDone {
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
	}
	if got := len(s.Jobs()); got > 3 {
		t.Fatalf("%d jobs retained, want <= 3", got)
	}
	if _, ok := s.Status(ids[0]); ok {
		t.Fatalf("oldest job %s should have been evicted", ids[0])
	}
	if _, err := s.Result(ids[len(ids)-1]); err != nil {
		t.Fatalf("newest job must survive eviction: %v", err)
	}
}

func TestResultErrors(t *testing.T) {
	s := New(Config{Logger: obs.Nop()})
	defer s.Close()
	if _, err := s.Result("j999"); err != ErrNotFound {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if _, ok := s.Status("j999"); ok {
		t.Fatal("unknown job must not have status")
	}
}

func TestSubscribeStreamsBlocks(t *testing.T) {
	s := New(Config{Logger: obs.Nop()})
	defer s.Close()
	// 1024 vectors = 16 blocks, enough to observe streaming.
	id, err := s.Submit(JobSpec{
		Circuit:  "c17",
		Patterns: PatternSpec{Random: &RandomSpec{N: 1024, Seed: 1}},
		Mode:     "nodrop",
	})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, ok := s.Subscribe(id)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer cancel()
	var events []ProgressEvent
	for ev := range ch {
		events = append(events, ev)
	}
	st := waitDone(t, s, id)
	if st.State != StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	// Events are advisory (a slow consumer may drop some) but block
	// indices must be strictly increasing and in range.
	for i := 1; i < len(events); i++ {
		if events[i].Block <= events[i-1].Block {
			t.Fatalf("non-increasing block stream: %v then %v", events[i-1], events[i])
		}
	}
	for _, ev := range events {
		if ev.Block < 0 || ev.Block >= ev.Blocks || ev.JobID != id {
			t.Fatalf("bad event %+v", ev)
		}
	}
	// Subscribing after completion yields an immediately closed channel.
	ch2, cancel2, ok := s.Subscribe(id)
	if !ok {
		t.Fatal("late subscribe failed")
	}
	defer cancel2()
	if _, open := <-ch2; open {
		t.Fatal("late subscription channel must start closed")
	}
}

// TestConcurrentJobsBounded floods a 2-slot pool with jobs and checks
// they all complete with per-seed-correct results (the shared caches
// and the bounded pool must not cross-contaminate jobs).
func TestConcurrentJobsBounded(t *testing.T) {
	s := New(Config{Logger: obs.Nop(), MaxConcurrentJobs: 2, SimWorkers: 2})
	defer s.Close()
	ids := make([]string, 8)
	for i := range ids {
		id, err := s.Submit(JobSpec{
			Circuit:  "s27",
			Patterns: PatternSpec{Random: &RandomSpec{N: 192, Seed: uint64(i)}},
			Mode:     "nodrop",
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for i, id := range ids {
		st := waitDone(t, s, id)
		if st.State != StateDone {
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		res, err := s.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		_, want := directRun(t, "s27", 192, uint64(i), fsim.Options{Mode: fsim.NoDrop})
		if res.Detected != want.DetectedCount() {
			t.Fatalf("job %s (seed %d): detected %d, want %d", id, i, res.Detected, want.DetectedCount())
		}
	}
	st := s.Stats()
	if st.JobsDone != 8 || st.JobsRunning != 0 || st.JobsQueued != 0 {
		t.Fatalf("counters after drain: %+v", st)
	}
}
