// Package report renders experiment results as plain-text tables and
// ASCII plots in the layout of the paper's tables and Figure 1. All
// output is deterministic so EXPERIMENTS.md can quote it verbatim.
package report

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders a fixed-width text table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns an empty table with the given title and column
// headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends one row; cells render with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowCells appends pre-formatted cells.
func (t *Table) AddRowCells(cells []string) {
	t.rows = append(t.rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		var line strings.Builder
		for i := range t.headers {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				line.WriteString("  ")
			}
			fmt.Fprintf(&line, "%-*s", widths[i], cell)
		}
		sb.WriteString(strings.TrimRight(line.String(), " "))
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// Series is one curve of a scatter plot.
type Series struct {
	// Marker is the single character plotted for this series (the
	// paper uses o, d and z).
	Marker byte
	// Label is shown in the legend.
	Label string
	// X, Y are parallel coordinate slices.
	X, Y []float64
}

// Plot renders an ASCII scatter plot of the given series in a
// width x height character grid, with both axes spanning [0, 100]
// (percent scales, as in the paper's Figure 1). Later series
// overwrite earlier ones where markers collide.
func Plot(title string, width, height int, series ...Series) string {
	if width < 10 {
		width = 10
	}
	if height < 5 {
		height = 5
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	place := func(s Series) {
		for i := range s.X {
			col := int(s.X[i] / 100 * float64(width-1))
			row := int(s.Y[i] / 100 * float64(height-1))
			if col < 0 {
				col = 0
			}
			if col >= width {
				col = width - 1
			}
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[height-1-row][col] = s.Marker
		}
	}
	for _, s := range series {
		place(s)
	}

	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	for r, line := range grid {
		var ylabel string
		switch r {
		case 0:
			ylabel = "100%"
		case height - 1:
			ylabel = "  0%"
		default:
			ylabel = "    "
		}
		fmt.Fprintf(&sb, "%s |%s|\n", ylabel, string(line))
	}
	fmt.Fprintf(&sb, "     %s\n", strings.Repeat("-", width+2))
	fmt.Fprintf(&sb, "      0%%%*s\n", width-4, "100%")
	for _, s := range series {
		fmt.Fprintf(&sb, "      %c - %s\n", s.Marker, s.Label)
	}
	return sb.String()
}
