package service

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"github.com/eda-go/adifo/internal/journal"
	"github.com/eda-go/adifo/internal/obs/trace"
)

// This file is the engine's side of the write-ahead journal: the
// appends each lifecycle transition emits, and the recovery pass Open
// runs before any listener accepts traffic.
//
// The journal stores wire-level JSON for specs and results, not
// internal structs (see DESIGN.md): a replayed spec re-enters the
// engine through the same decode+validate path a client submission
// takes, and a replayed result is served verbatim, so a restart is
// byte-invisible to clients polling a finished job.

// journalSubmitted makes the accepted job durable. Submit returns the
// id to the caller only after this append's fsync — an acknowledged
// job survives a crash. The append (including its group-committed
// fsync) is a span on the job's trace: submit latency a client sees is
// dominated by it, so it belongs on the flight recording.
func (s *Service) journalSubmitted(j *job) error {
	_, sp := trace.Start(j.tctx, "journal.append")
	sp.SetAttr("record", "submitted")
	defer sp.End()
	spec, err := json.Marshal(j.spec)
	if err != nil {
		return err
	}
	return s.jnl.Append(journal.Record{
		Type:   journal.TypeSubmitted,
		Job:    j.id,
		Kind:   j.status.Kind,
		Tenant: j.spec.Tenant,
		Key:    j.spec.IdempotencyKey,
		Trace:  j.status.TraceID,
		Spec:   spec,
		At:     s.now().UnixNano(),
	})
}

// journalStarted records the queued→running transition. Async: losing
// it to a crash is harmless (a submitted-but-unfinished job re-enqueues
// either way), so the run path does not wait on a disk flush.
func (s *Service) journalStarted(j *job) {
	if s.jnl == nil {
		return
	}
	if err := s.jnl.AppendAsync(journal.Record{
		Type: journal.TypeStarted,
		Job:  j.id,
		At:   s.now().UnixNano(),
	}); err != nil {
		s.logger.Error("journal started append failed", "job", j.id, "err", err)
	}
}

// journalFinished records the terminal transition, with the result's
// wire bytes for done jobs. Synchronous — the fsync is group-committed
// with concurrent appends. A journal failure here does not fail the
// job (the result is correct and already published); it is logged and
// counted, and the worst a crash can then do is re-run a deterministic
// job.
func (s *Service) journalFinished(j *job, st JobStatus, res any) {
	if s.jnl == nil {
		return
	}
	j.mu.Lock()
	tctx := j.tctx
	j.mu.Unlock()
	_, sp := trace.Start(tctx, "journal.append")
	sp.SetAttr("record", "finished")
	defer sp.End()
	rec := journal.Record{
		Type:  journal.TypeFinished,
		Job:   j.id,
		State: st.State,
		Error: st.Error,
		At:    s.now().UnixNano(),
	}
	if st.State == StateDone && res != nil {
		raw, err := json.Marshal(res)
		if err != nil {
			s.logger.Error("journal result encode failed", "job", j.id, "err", err)
		} else {
			rec.Result = raw
		}
	}
	if err := s.jnl.Append(rec); err != nil {
		s.logger.Error("journal finished append failed", "job", j.id, "err", err)
	}
}

// replayedJob aggregates one job's records across the whole log.
type replayedJob struct {
	submitted journal.Record
	started   bool
	finished  *journal.Record
}

// recover replays the journal in dir and rebuilds the engine's state:
// terminal jobs come back queryable with their journaled result bytes,
// jobs that were queued or running at crash time re-enqueue with their
// original ids, the idempotency-key map is rebuilt, and the id
// sequence resumes past every replayed id. Runs before Open returns —
// callers wire the listener up afterwards, so recovery always precedes
// traffic. s.jnl is already open: a replayed spec that no longer
// validates is journaled as failed rather than retried forever.
func (s *Service) recover(dir string) error {
	byID := make(map[string]*replayedJob)
	var ids []string
	res, err := journal.Replay(dir, func(rec journal.Record) error {
		switch rec.Type {
		case journal.TypeSubmitted:
			if _, dup := byID[rec.Job]; !dup {
				byID[rec.Job] = &replayedJob{submitted: rec}
				ids = append(ids, rec.Job)
			}
		case journal.TypeStarted:
			if p := byID[rec.Job]; p != nil {
				p.started = true
			}
		case journal.TypeFinished:
			if p := byID[rec.Job]; p != nil && p.finished == nil {
				r := rec
				p.finished = &r
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("service: journal replay: %w", err)
	}
	s.replayRecords = uint64(res.Records)
	if res.Truncated {
		s.logger.Warn("journal tail truncated or corrupt; replaying the clean prefix",
			"dir", dir, "records", res.Records)
	}

	for _, id := range ids {
		p := byID[id]
		if n := parseJobID(id); n > s.seq {
			s.seq = n
		}
		if key := idemCacheKey(p.submitted.Tenant, p.submitted.Key); key != "" {
			s.idem[key] = id
		}
		if p.finished != nil {
			s.installTerminal(id, p)
		} else {
			s.requeue(id, p)
		}
	}
	s.evictOldJobsLocked()
	if len(ids) > 0 {
		s.logger.Info("journal replayed",
			"dir", dir, "records", res.Records, "jobs", len(ids),
			"requeued", s.replayRequeued, "truncated", res.Truncated)
	}
	return nil
}

// installTerminal registers a replayed terminal job: identity, final
// state, and — for done jobs — both the journaled result bytes (served
// verbatim) and the decoded typed payload (for in-process callers).
// Progress fields and phase history are not journaled; the status is
// the job's terminal identity, not a replay of its run.
func (s *Service) installTerminal(id string, p *replayedJob) {
	fin := p.finished
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // terminal: nothing to abort
	j := &job{
		id:      id,
		tenant:  p.submitted.Tenant,
		idemKey: idemCacheKey(p.submitted.Tenant, p.submitted.Key),
		ctx:     ctx,
		cancel:  cancel,
		now:     s.now,
		met:     s.met,
		status: JobStatus{
			ID:      id,
			Kind:    NormalizeKind(p.submitted.Kind),
			Tenant:  p.submitted.Tenant,
			State:   fin.State,
			Error:   fin.Error,
			TraceID: p.submitted.Trace,
		},
	}
	if fin.State == StateDone && len(fin.Result) > 0 {
		j.rawResult = append([]byte(nil), fin.Result...)
		if typed, err := decodeResult(j.status.Kind, fin.Result); err == nil {
			j.result = typed
			j.status.Timing = resultTiming(typed)
		} else {
			s.logger.Warn("journaled result decode failed; serving raw bytes only",
				"job", id, "err", err)
		}
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.submitted++
	s.met.jobsSubmitted.With(j.status.Kind).Inc()
	s.met.jobsTotal.With(j.status.Kind, fin.State).Inc()
	switch fin.State {
	case StateDone:
		s.done++
	case StateFailed:
		s.failed++
	case StateCancelled:
		s.cancelled++
	}
}

// requeue re-enqueues a job that was queued or running at crash time.
// The journaled wire spec re-enters through the same validation a
// fresh submission gets; a spec this server can no longer run (kind
// disabled, worker bound lowered) becomes a failed job — journaled as
// such, so the next restart does not retry it forever.
func (s *Service) requeue(id string, p *replayedJob) {
	var spec JobSpec
	var k jobKind
	err := json.Unmarshal(p.submitted.Spec, &spec)
	if err == nil {
		k, err = s.validateSpec(spec)
	}
	if err != nil {
		err = fmt.Errorf("service: journal replay: job no longer runnable: %w", err)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		j := &job{
			id: id, tenant: p.submitted.Tenant,
			idemKey: idemCacheKey(p.submitted.Tenant, p.submitted.Key),
			ctx:     ctx, cancel: cancel, now: s.now, met: s.met,
			status: JobStatus{
				ID:     id,
				Kind:   NormalizeKind(p.submitted.Kind),
				Tenant: p.submitted.Tenant,
				State:  StateFailed,
				Error:  err.Error(),
			},
		}
		s.jobs[id] = j
		s.order = append(s.order, id)
		s.submitted++
		s.failed++
		s.met.jobsSubmitted.With(j.status.Kind).Inc()
		s.met.jobsTotal.With(j.status.Kind, StateFailed).Inc()
		s.logger.Error("replayed job failed validation", "job", id, "err", err)
		s.journalFinished(j, j.status, nil)
		return
	}
	// A journaled trace id is restored, so the rerun continues the
	// original submit's trace instead of minting a fresh one — and the
	// replayed result is id-identical to the pre-crash run's.
	ctx := context.Background()
	if tid, terr := trace.ParseTraceID(p.submitted.Trace); terr == nil {
		ctx = trace.ContextWithRemote(ctx, trace.SpanContext{TraceID: tid, Flags: trace.FlagSampled})
	}
	j := s.newJob(ctx, id, spec, k)
	if p.submitted.At > 0 {
		j.timing.SubmittedAt = time.Unix(0, p.submitted.At)
		j.status.Timing = j.timing.Snapshot()
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.submitted++
	s.replayRequeued++
	s.wg.Add(1)
	s.enqueueLocked(j)
}

// parseJobID extracts the numeric part of an engine job id ("j42" →
// 42), 0 for anything else.
func parseJobID(id string) uint64 {
	if len(id) < 2 || id[0] != 'j' {
		return 0
	}
	n, err := strconv.ParseUint(id[1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// decodeResult decodes a journaled result payload into the kind's
// typed form, so ResultAny on a replayed job returns the same concrete
// type a live run produces.
func decodeResult(kind string, raw []byte) (any, error) {
	switch kind {
	case KindGrade:
		var r JobResult
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, err
		}
		return &r, nil
	case KindAtpg:
		var r AtpgResult
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, err
		}
		return &r, nil
	case KindADIOrder:
		var r OrderResult
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, err
		}
		return &r, nil
	}
	return nil, fmt.Errorf("unknown kind %q", kind)
}

// resultTiming lifts the Timing out of a typed result payload for the
// replayed job's status.
func resultTiming(res any) *Timing {
	switch r := res.(type) {
	case *JobResult:
		return r.Timing
	case *AtpgResult:
		return r.Timing
	case *OrderResult:
		return r.Timing
	}
	return nil
}
