package fsim

import (
	"strconv"
	"testing"

	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/gen"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/prng"
)

// requireEqualResults asserts par is bit-for-bit identical to seq.
func requireEqualResults(t *testing.T, ctx string, seq, par *Result) {
	t.Helper()
	if par.VectorsUsed != seq.VectorsUsed {
		t.Fatalf("%s: VectorsUsed %d vs %d", ctx, par.VectorsUsed, seq.VectorsUsed)
	}
	for fi := range seq.DetCount {
		if par.DetCount[fi] != seq.DetCount[fi] {
			t.Fatalf("%s fault %d: DetCount %d vs %d", ctx, fi, par.DetCount[fi], seq.DetCount[fi])
		}
		if par.FirstDet[fi] != seq.FirstDet[fi] {
			t.Fatalf("%s fault %d: FirstDet %d vs %d", ctx, fi, par.FirstDet[fi], seq.FirstDet[fi])
		}
	}
	if (par.Det == nil) != (seq.Det == nil) {
		t.Fatalf("%s: Det presence differs (par %v, seq %v)", ctx, par.Det != nil, seq.Det != nil)
	}
	if seq.Det != nil {
		for fi := range seq.Det {
			for w := 0; w*logic.WordBits < seq.Det[fi].Len(); w++ {
				if par.Det[fi].WordAt(w) != seq.Det[fi].WordAt(w) {
					t.Fatalf("%s fault %d: Det word %d differs", ctx, fi, w)
				}
			}
		}
	}
	if len(par.Ndet) != len(seq.Ndet) {
		t.Fatalf("%s: Ndet length %d vs %d", ctx, len(par.Ndet), len(seq.Ndet))
	}
	for u := range seq.Ndet {
		if par.Ndet[u] != seq.Ndet[u] {
			t.Fatalf("%s: ndet(%d) %d vs %d", ctx, u, par.Ndet[u], seq.Ndet[u])
		}
	}
}

// TestRunParallelMatchesSequential checks the bit-identical guarantee
// across all three modes, worker counts on both sides of the fault
// count, and multiple circuits.
func TestRunParallelMatchesSequential(t *testing.T) {
	modes := []Options{
		{Mode: NoDrop},
		{Mode: Drop},
		{Mode: NDetect, N: 1},
		{Mode: NDetect, N: 3},
	}
	for _, workers := range []int{1, 2, 3, 8, 64} {
		for seed := uint64(1); seed <= 3; seed++ {
			c := gen.Generate(gen.Config{Name: "p", Inputs: 10, Gates: 120, Seed: seed})
			fl := fault.CollapsedUniverse(c)
			ps := logic.RandomPatterns(c.NumInputs(), 200, prng.New(seed))
			for _, opts := range modes {
				seq := Run(fl, ps, opts)
				par := RunParallelWith(fl, ps, ParallelOptions{Options: opts, Workers: workers})
				ctx := opts.Mode.String()
				requireEqualResults(t,
					ctx+"/workers="+strconv.Itoa(workers)+"/seed="+strconv.Itoa(int(seed)), seq, par)
			}
		}
	}
}

// TestRunParallelSingleFault covers the 1-fault edge case, where every
// worker count collapses to a single shard.
func TestRunParallelSingleFault(t *testing.T) {
	c := gen.Generate(gen.Config{Name: "p1", Inputs: 8, Gates: 60, Seed: 7})
	full := fault.CollapsedUniverse(c)
	fl := &fault.List{Circuit: c, Faults: full.Faults[:1]}
	ps := logic.RandomPatterns(c.NumInputs(), 130, prng.New(7))
	for _, opts := range []Options{{Mode: NoDrop}, {Mode: Drop}, {Mode: NDetect, N: 2}} {
		seq := Run(fl, ps, opts)
		for _, workers := range []int{1, 4, 16} {
			par := RunParallelWith(fl, ps, ParallelOptions{Options: opts, Workers: workers})
			requireEqualResults(t, opts.Mode.String()+"/1-fault/workers="+strconv.Itoa(workers), seq, par)
		}
	}
}

// TestRunParallelWorkersExceedFaults pins the workers > faults case on
// a non-trivial list: the pool must clamp, not deadlock or skip shards.
func TestRunParallelWorkersExceedFaults(t *testing.T) {
	c := gen.Generate(gen.Config{Name: "pw", Inputs: 8, Gates: 40, Seed: 11})
	full := fault.CollapsedUniverse(c)
	fl := &fault.List{Circuit: c, Faults: full.Faults[:5]}
	ps := logic.RandomPatterns(c.NumInputs(), 190, prng.New(11))
	for _, opts := range []Options{{Mode: NoDrop}, {Mode: Drop}, {Mode: NDetect, N: 2}} {
		seq := Run(fl, ps, opts)
		par := RunParallelWith(fl, ps, ParallelOptions{Options: opts, Workers: 64})
		requireEqualResults(t, opts.Mode.String()+"/workers>faults", seq, par)
	}
}

// TestRunParallelStopAtCoverage checks the early-exit path truncates
// at the same block as the sequential run.
func TestRunParallelStopAtCoverage(t *testing.T) {
	c := gen.Generate(gen.Config{Name: "ps", Inputs: 10, Gates: 150, Seed: 5})
	fl := fault.CollapsedUniverse(c)
	ps := logic.RandomPatterns(c.NumInputs(), 512, prng.New(5))
	opts := Options{Mode: Drop, StopAtCoverage: 0.5}
	seq := Run(fl, ps, opts)
	for _, workers := range []int{2, 7} {
		par := RunParallelWith(fl, ps, ParallelOptions{Options: opts, Workers: workers})
		requireEqualResults(t, "stop-at-coverage/workers="+strconv.Itoa(workers), seq, par)
	}
}

// TestRunParallelWithGood checks that supplying precomputed good
// values (the registry cache path) changes nothing about the result.
func TestRunParallelWithGood(t *testing.T) {
	c := gen.Generate(gen.Config{Name: "pg", Inputs: 10, Gates: 120, Seed: 9})
	fl := fault.CollapsedUniverse(c)
	ps := logic.RandomPatterns(c.NumInputs(), 200, prng.New(9))
	good := ComputeGood(c, ps)
	for _, opts := range []Options{{Mode: NoDrop}, {Mode: Drop}, {Mode: NDetect, N: 2}} {
		seq := Run(fl, ps, opts)
		par := RunParallelWith(fl, ps, ParallelOptions{Options: opts, Workers: 4, Good: good})
		requireEqualResults(t, opts.Mode.String()+"/good-cache", seq, par)
	}
}

// TestRunParallelProgress checks the per-block progress stream: one
// callback per simulated block, monotone fields, final state matching
// the result.
func TestRunParallelProgress(t *testing.T) {
	c := gen.Generate(gen.Config{Name: "pp", Inputs: 10, Gates: 120, Seed: 3})
	fl := fault.CollapsedUniverse(c)
	ps := logic.RandomPatterns(c.NumInputs(), 300, prng.New(3))
	var events []Progress
	res := RunParallelWith(fl, ps, ParallelOptions{
		Options:  Options{Mode: NoDrop},
		Workers:  4,
		Progress: func(p Progress) { events = append(events, p) },
	})
	if len(events) != ps.Blocks() {
		t.Fatalf("got %d progress events, want %d", len(events), ps.Blocks())
	}
	for i, ev := range events {
		if ev.Block != i || ev.Blocks != ps.Blocks() {
			t.Fatalf("event %d: Block=%d Blocks=%d", i, ev.Block, ev.Blocks)
		}
		if i > 0 && ev.Detected < events[i-1].Detected {
			t.Fatalf("Detected not monotone at block %d", i)
		}
	}
	last := events[len(events)-1]
	if last.VectorsUsed != res.VectorsUsed || last.Detected != res.DetectedCount() {
		t.Fatalf("final progress %+v does not match result (used %d, detected %d)",
			last, res.VectorsUsed, res.DetectedCount())
	}
}

func TestRunParallelPanicsOnWidthMismatch(t *testing.T) {
	c := gen.Generate(gen.Config{Name: "p", Inputs: 4, Gates: 10, Seed: 1})
	fl := fault.CollapsedUniverse(c)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RunParallel(fl, logic.NewPatternSet(2), 2)
}

func TestRunParallelPanicsOnForeignGood(t *testing.T) {
	c := gen.Generate(gen.Config{Name: "p", Inputs: 4, Gates: 10, Seed: 1})
	fl := fault.CollapsedUniverse(c)
	ps := logic.RandomPatterns(4, 64, prng.New(1))
	other := logic.RandomPatterns(4, 128, prng.New(2))
	good := ComputeGood(c, other)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RunParallelWith(fl, ps, ParallelOptions{Workers: 2, Good: good})
}

func BenchmarkRunParallel(b *testing.B) {
	c := gen.Generate(gen.Config{Name: "p", Inputs: 32, Gates: 600, Seed: 1})
	fl := fault.CollapsedUniverse(c)
	ps := logic.RandomPatterns(c.NumInputs(), 1024, prng.New(1))
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Run(fl, ps, Options{Mode: NoDrop})
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			RunParallel(fl, ps, 0)
		}
	})
	good := ComputeGood(c, ps)
	b.Run("parallel-cached-good", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			RunParallelWith(fl, ps, ParallelOptions{Good: good})
		}
	})

	// The largest bundled suite circuits at a fixed 8 workers: the
	// numbers the simulator-core perf trajectory (BENCH_sim.json) is
	// gated on.
	for _, name := range []string{"irs5378", "irs13207"} {
		sc, ok := gen.SuiteByName(name)
		if !ok {
			b.Fatalf("suite circuit %s missing", name)
		}
		big := sc.Build()
		bigFl := fault.CollapsedUniverse(big)
		bigPs := logic.RandomPatterns(big.NumInputs(), 1024, prng.New(sc.Seed))
		for _, mode := range []Options{{Mode: NoDrop}, {Mode: Drop}} {
			opts := mode
			b.Run(name+"/"+opts.Mode.String()+"/w8", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					RunParallelWith(bigFl, bigPs, ParallelOptions{Options: opts, Workers: 8})
				}
			})
		}
	}
}
