package circuit

import (
	"strings"
	"testing"
)

const c17Bench = `
# c17 ISCAS-85 style
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

func TestParseC17(t *testing.T) {
	c, err := ParseBenchString("c17", c17Bench)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if c.NumInputs() != 5 || c.NumOutputs() != 2 {
		t.Fatalf("c17: %d inputs, %d outputs", c.NumInputs(), c.NumOutputs())
	}
	st := c.ComputeStats()
	if st.Gates != 6 {
		t.Fatalf("c17 gates = %d", st.Gates)
	}
	if st.Levels != 3 {
		t.Fatalf("c17 levels = %d", st.Levels)
	}
}

func TestParseForwardReference(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(y)
y = AND(m, a)
m = NOT(a)
`
	c, err := ParseBenchString("fwd", src)
	if err != nil {
		t.Fatalf("forward reference should parse: %v", err)
	}
	m, _ := c.GateByName("m")
	if c.Gates[m].Type != Not {
		t.Fatal("wrong gate")
	}
}

func TestParseDFFScanConversion(t *testing.T) {
	src := `
# tiny sequential design
INPUT(x)
OUTPUT(z)
s = DFF(ns)
ns = XOR(x, s)
z = AND(x, s)
`
	c, err := ParseBenchString("seq", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	// x + pseudo-PI s.
	if c.NumInputs() != 2 {
		t.Fatalf("inputs = %d, want 2", c.NumInputs())
	}
	// z + pseudo-PO ns.
	if c.NumOutputs() != 2 {
		t.Fatalf("outputs = %d, want 2", c.NumOutputs())
	}
	s, ok := c.GateByName("s")
	if !ok || c.Gates[s].Type != PI {
		t.Fatal("DFF output must become a pseudo-PI")
	}
	ns, _ := c.GateByName("ns")
	if !c.IsOutput(ns) {
		t.Fatal("DFF data input must become a pseudo-PO")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"garbage", "INPUT(a)\nwat\n", "assignment"},
		{"unknownop", "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n", "unknown gate type"},
		{"undefined", "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n", "undefined signal"},
		{"dup", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = NOT(a)\n", "duplicate"},
		{"badinput", "INPUT(a,b)\nOUTPUT(a)\n", "malformed"},
		{"dffarity", "INPUT(a)\nOUTPUT(a)\ns = DFF(a, a)\n", "exactly one"},
		{"undefout", "INPUT(a)\nOUTPUT(ghost)\na2 = NOT(a)\n", "undefined"},
		{"emptyarg", "INPUT(a)\nOUTPUT(y)\ny = AND(a, )\n", "empty argument"},
		{"noparen", "INPUT(a)\nOUTPUT(y)\ny = NOT a\n", "malformed"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseBenchString(c.name, c.src)
			if err == nil || !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("want error containing %q, got %v", c.wantSub, err)
			}
		})
	}
}

func TestBenchRoundTrip(t *testing.T) {
	c1, err := ParseBenchString("c17", c17Bench)
	if err != nil {
		t.Fatal(err)
	}
	out := BenchString(c1)
	c2, err := ParseBenchString("c17rt", out)
	if err != nil {
		t.Fatalf("re-parse of written bench failed: %v\n%s", err, out)
	}
	if c1.NumGates() != c2.NumGates() || c1.NumInputs() != c2.NumInputs() || c1.NumOutputs() != c2.NumOutputs() {
		t.Fatal("round trip changed structure")
	}
	s1, s2 := c1.ComputeStats(), c2.ComputeStats()
	if s1 != s2 {
		t.Fatalf("round trip changed stats: %+v vs %+v", s1, s2)
	}
}

func TestBenchCommentsAndCase(t *testing.T) {
	src := `
# leading comment
input(a)   # trailing comment
INPUT(b)
output(y)
y = nand(a, b)
`
	c, err := ParseBenchString("case", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	y, _ := c.GateByName("y")
	if c.Gates[y].Type != Nand {
		t.Fatal("lower-case nand not recognized")
	}
}

func TestSortedSignalNames(t *testing.T) {
	c, _ := ParseBenchString("c17", c17Bench)
	names := c.SortedSignalNames()
	if len(names) != c.NumGates() {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatal("names not sorted")
		}
	}
}
