package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/eda-go/adifo/internal/obs"
	"github.com/eda-go/adifo/internal/obs/trace"
	"github.com/eda-go/adifo/internal/service"
)

// callerTraceparent is the caller-minted trace context the test
// injects, as an upstream service (or the adifo CLI via a proxy)
// would.
const callerTraceparent = "00-6e25d1a1b2c3d4e5f60718293a4b5c6d-00f067aa0ba902b7-01"

// TestClusterBackendDeathSingleTrace: one cluster grade across three
// backends, one of which dies mid-stream, yields ONE trace under the
// caller's trace id — root, every shard attempt (the fatal one and its
// rerun included) and the merge — visible on the client result, in the
// flight recorder's tree endpoint, on the surviving backends' own
// recorders, and stamped into log lines.
func TestClusterBackendDeathSingleTrace(t *testing.T) {
	spec := service.JobSpec{
		Bench: slowChainBench(), Name: "slow-chain", Mode: "nodrop",
		Patterns: service.PatternSpec{Random: &service.RandomSpec{N: 2048, Seed: 5}},
	}
	urls, svcs := newBackends(t, 2)
	dying := &dyingBackend{}
	dsrv := httptest.NewServer(dying)
	defer dsrv.Close()

	var logs bytes.Buffer
	co, err := New(append(urls, dsrv.URL), Options{Logger: obs.NewLogger(&logs, slog.LevelDebug)})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	caller, err := trace.ParseTraceparent(callerTraceparent)
	if err != nil {
		t.Fatal(err)
	}
	tid := caller.TraceID.String()
	ctx := trace.ContextWithRemote(context.Background(), caller)
	id, err := co.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := co.Stream(context.Background(), id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone {
		t.Fatalf("cluster job after backend death: %s (%s), want done", st.State, st.Error)
	}
	if st.TraceID != tid {
		t.Errorf("terminal status TraceID = %q, want caller's %q", st.TraceID, tid)
	}
	res, err := co.Result(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID != tid {
		t.Errorf("result TraceID = %q, want caller's %q", res.TraceID, tid)
	}

	// The coordinator's recorder holds the whole fan-out as one trace.
	td, ok := co.Traces().Trace(tid)
	if !ok {
		t.Fatalf("coordinator recorder has no trace %s", tid)
	}
	if td.Root != "cluster.grade" {
		t.Errorf("trace root = %q, want cluster.grade", td.Root)
	}
	var shardSpans, failedShards, reruns, merges int
	for _, sp := range td.Spans {
		switch sp.Name {
		case "shard":
			shardSpans++
			if sp.Status == "error" {
				failedShards++
			}
			for _, a := range sp.Attrs {
				if a.Key == "retry" && a.Value != "0" {
					reruns++
				}
			}
		case "merge":
			merges++
		}
	}
	if shardSpans < 4 {
		t.Errorf("trace has %d shard spans, want >= 4 (3 placements + the rerun)", shardSpans)
	}
	if failedShards == 0 {
		t.Error("no shard span recorded the backend death as an error")
	}
	if reruns == 0 {
		t.Error("no shard span records a retry attempt")
	}
	if merges != 1 {
		t.Errorf("trace has %d merge spans, want 1", merges)
	}

	// The tree endpoint serves the same trace nested under one root.
	rr := httptest.NewRecorder()
	co.Traces().Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces/"+tid, nil))
	if rr.Code != 200 {
		t.Fatalf("GET /debug/traces/%s: HTTP %d", tid, rr.Code)
	}
	var tree struct {
		TraceID string            `json:"trace_id"`
		Root    string            `json:"root"`
		Spans   int               `json:"spans"`
		Tree    []json.RawMessage `json:"tree"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &tree); err != nil {
		t.Fatalf("tree endpoint returned unparseable JSON: %v", err)
	}
	if tree.TraceID != tid || tree.Root != "cluster.grade" || len(tree.Tree) != 1 {
		t.Errorf("tree = {trace_id %q, root %q, %d roots}, want {%q, cluster.grade, 1}",
			tree.TraceID, tree.Root, len(tree.Tree), tid)
	}
	if tree.Spans != len(td.Spans) {
		t.Errorf("tree span count %d != trace span count %d", tree.Spans, len(td.Spans))
	}

	// Both surviving backends recorded their sub-jobs under the same
	// trace id — the context crossed the wire. A backend's root span
	// ends just after its stream closes; poll briefly.
	for i, svc := range svcs {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, ok := svc.Traces().Trace(tid); ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("backend %d recorder never completed trace %s", i, tid)
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// The coordinator's own log lines carry the trace id — one grep
	// correlates logs with the recorder.
	if !strings.Contains(logs.String(), "trace_id="+tid) {
		t.Errorf("coordinator logs carry no trace_id=%s:\n%s", tid, logs.String())
	}
}
