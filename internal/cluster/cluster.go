// Package cluster fans one fault-grading job out across multiple
// adifod backends. The coordinator partitions the collapsed fault
// universe into deterministic index-range shards (service.ShardRange),
// submits sub-jobs with the wire's fault_shard selector set, merges the
// streamed per-block progress and the final per-shard results into a
// single JobResult, and retries the shard of a dead backend on a
// surviving one.
//
// Placement is a work queue, not a static assignment: the coordinator
// cuts ShardsPerBackend shards per healthy backend — many more shards
// than backends — and each backend pulls the next queued shard as its
// in-flight window (bounded by MaxInFlightPerBackend, scaled by the
// capacity each backend reports on /v1/stats) opens up. Fast backends
// therefore finish more shards; a slow backend bounds only its own
// tail, not the job. When the queue runs dry an idle backend first
// steals a shard that is still sitting unstarted in a backlogged
// peer's own queue, then speculatively duplicates the least-progressed
// running shard — the first attempt to reach a terminal result wins
// and the loser is cancelled. A background re-probe loop re-admits
// backends that were unhealthy (or flapping) at submit time, so
// membership is dynamic over a job's lifetime.
//
// The merge is bit-identical to an unsharded single-node run because
// dropping decisions are per-fault: a fault drops when its own
// detection count crosses the mode threshold, so disjoint fault shards
// have no cross-fault control dependence. Each backend grades its
// shard against the full (replicated) pattern set; per-fault counters
// concatenate, per-vector ndet counters sum, and the merged
// vectors-used is the maximum over shards — exactly the block at which
// a single run's global active list would have emptied. Patterns are
// replicated rather than split because dropping *does* depend on
// earlier vectors: pattern shards would have cross-shard control
// dependence, fault shards do not. Determinism is also what makes
// duplicate attempts safe: a speculative copy reproduces the original
// byte for byte, so whichever attempt finishes first yields the same
// merged job.
//
// Backend health is probed via /v1/stats; a backend that keeps failing
// (flapping) is excluded from placement once its consecutive failure
// count reaches Options.MaxBackendFailures, until a probe or sub-job
// succeeds on it again.
package cluster

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"github.com/eda-go/adifo/internal/obs"
	"github.com/eda-go/adifo/internal/obs/trace"
	"github.com/eda-go/adifo/internal/service"
	"github.com/eda-go/adifo/internal/service/client"
)

// Options configures a Coordinator; zero values select sensible
// defaults.
type Options struct {
	// HTTPClient is used for every backend call (nil =
	// http.DefaultClient).
	HTTPClient *http.Client
	// ProbeTimeout bounds one /v1/stats health probe (default 2s).
	ProbeTimeout time.Duration
	// MaxShardRetries is how many times one shard may be resubmitted
	// after backend failures before the cluster job fails (default 3).
	MaxShardRetries int
	// MaxBackendFailures is the consecutive-failure count at which a
	// backend is considered flapping and excluded from placement until
	// a probe or sub-job completes on it again (default 3).
	MaxBackendFailures int
	// MaxRetainedJobs bounds how many finished cluster jobs (and their
	// merged results) are kept for status/result queries, mirroring the
	// service's own retention bound; the oldest finished jobs are
	// evicted first, running jobs never (default 1024).
	MaxRetainedJobs int
	// ShardsPerBackend is the work-queue over-partitioning factor K: a
	// job over N healthy backends is cut into K×N shards (default 4).
	// More shards mean finer-grained load balancing — a straggler
	// strands at most 1/(K·N) of the fault universe per in-flight slot
	// — at the cost of more sub-jobs and more merge tracks.
	ShardsPerBackend int
	// MaxInFlightPerBackend caps how many sub-jobs of one cluster job
	// run concurrently on a single backend (default: ShardsPerBackend,
	// so the whole queue streams at once when every backend is
	// healthy and the queue only backs up under failures or skew).
	// Backends reporting fewer workers than their largest peer get a
	// proportionally smaller window (see capacity).
	MaxInFlightPerBackend int
	// ReprobeInterval is the period of the background membership sweep
	// that re-probes every backend, records its reported capacity, and
	// re-admits recovered backends into running jobs (default 3s).
	ReprobeInterval time.Duration
	// StragglerAfter is how old a shard's sole attempt must be before
	// an idle backend (with an empty queue) may steal it (no streamed
	// progress yet — the sub-job is stuck in its backend's queue) or
	// speculatively duplicate it (progressing, but slowly). The age
	// gate keeps healthy fast jobs at exactly one attempt per shard:
	// "no progress" alone also describes a placement that is a few
	// milliseconds old (default 2s).
	StragglerAfter time.Duration
	// Logger receives placement and retry diagnostics as structured
	// records with "backend", "shard" and "job" fields. Nil selects the
	// stack default (Info-level text on stderr); tests pass obs.Nop().
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.MaxShardRetries <= 0 {
		o.MaxShardRetries = 3
	}
	if o.MaxBackendFailures <= 0 {
		o.MaxBackendFailures = 3
	}
	if o.MaxRetainedJobs <= 0 {
		o.MaxRetainedJobs = 1024
	}
	if o.ShardsPerBackend <= 0 {
		o.ShardsPerBackend = 4
	}
	if o.MaxInFlightPerBackend <= 0 {
		o.MaxInFlightPerBackend = o.ShardsPerBackend
	}
	if o.ReprobeInterval <= 0 {
		o.ReprobeInterval = 3 * time.Second
	}
	if o.StragglerAfter <= 0 {
		o.StragglerAfter = 2 * time.Second
	}
	o.Logger = obs.Or(o.Logger)
	return o
}

// backend is one adifod server plus its health bookkeeping. failures
// counts consecutive transport-level failures; any completed sub-job
// or successful probe resets it. workers/load are the capacity hints
// from the backend's most recent /v1/stats answer.
type backend struct {
	url string
	cl  *client.Client

	mu       sync.Mutex
	failures int
	alive    bool
	workers  int
	load     int // queued + running jobs at last probe
}

func (b *backend) markFailure() {
	b.mu.Lock()
	b.failures++
	b.mu.Unlock()
}

func (b *backend) markOK() {
	b.mu.Lock()
	b.failures = 0
	b.mu.Unlock()
}

// markProbe records a probe outcome: success resets the failure count
// (a backend that answers its stats endpoint is admittable again, even
// if it was flapping) and reports whether this probe observed a
// dead-to-alive transition.
func (b *backend) markProbe(ok bool) (recovered bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		recovered = !b.alive
		b.alive = true
		b.failures = 0
		return recovered
	}
	b.alive = false
	b.failures++
	return false
}

// setHints records the backend's self-reported capacity.
func (b *backend) setHints(workers, load int) {
	b.mu.Lock()
	b.workers, b.load = workers, load
	b.mu.Unlock()
}

func (b *backend) hints() (workers, load int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.workers, b.load
}

// flapping reports whether the backend has hit the consecutive-failure
// threshold.
func (b *backend) flapping(max int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.failures >= max
}

// Coordinator fans grading jobs out across a fixed set of adifod
// backends. It implements the same submit/status/result/cancel/stream
// surface as the service, which is what lets the adifo facade expose
// it behind the Grader interface.
type Coordinator struct {
	opts     Options
	backends []*backend
	logger   *slog.Logger

	// metrics/met instrument the coordinator; now is the clock,
	// swappable by tests that pin timing values.
	metrics *obs.Registry
	met     *clusterMetrics
	now     func() time.Time

	// traces records the coordinator's side of every cluster job's
	// trace: the fan-out root, one span per shard attempt (including
	// reruns, steals and speculative duplicates), and the merge. The
	// sub-jobs join the same trace on their backends via traceparent
	// propagation.
	traces *trace.Recorder

	// nonce distinguishes this coordinator incarnation in the
	// idempotency keys it mints for shard sub-jobs: a restarted
	// coordinator re-placing the "same" shard must not collide with a
	// sub-job the previous incarnation left on a journal-backed backend.
	nonce string

	// stop ends the membership re-probe loop.
	stop     chan struct{}
	stopOnce sync.Once

	mu    sync.Mutex
	jobs  map[string]*cjob
	order []string
	seq   uint64
	idem  map[string]string // caller idempotency key -> cluster job id
	wg    sync.WaitGroup
}

// New returns a coordinator over the given backend base URLs (e.g.
// "http://host:8417"). At least one URL is required.
func New(urls []string, opts Options) (*Coordinator, error) {
	if len(urls) == 0 {
		return nil, errors.New("cluster: at least one backend URL is required")
	}
	opts = opts.withDefaults()
	co := &Coordinator{
		opts:    opts,
		logger:  opts.Logger,
		jobs:    make(map[string]*cjob),
		idem:    make(map[string]string),
		metrics: obs.NewRegistry(),
		now:     time.Now,
		nonce:   newNonce(),
		traces:  trace.NewRecorder(trace.RecorderOptions{}),
		stop:    make(chan struct{}),
	}
	co.met = newClusterMetrics(co.metrics)
	seen := make(map[string]bool)
	for _, u := range urls {
		if seen[u] {
			return nil, fmt.Errorf("cluster: duplicate backend URL %s", u)
		}
		seen[u] = true
		co.backends = append(co.backends, &backend{url: u, cl: client.New(u, opts.HTTPClient)})
		// Pre-create the per-backend series so a scrape shows the full
		// backend set at zero before any probe or failure.
		co.met.probeSeconds.With(u)
		co.met.exclusions.With(u)
	}
	co.wg.Add(1)
	go func() {
		defer co.wg.Done()
		co.reprobeLoop()
	}()
	return co, nil
}

// Metrics exposes the coordinator's metric registry, so an embedder
// can mount its Prometheus exposition handler.
func (co *Coordinator) Metrics() *obs.Registry { return co.metrics }

// Traces exposes the coordinator's trace flight recorder, so an
// embedder can mount its /debug/traces handler.
func (co *Coordinator) Traces() *trace.Recorder { return co.traces }

// newNonce mints the coordinator incarnation nonce for shard
// idempotency keys.
func newNonce() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0"
	}
	return hex.EncodeToString(b[:])
}

// shardKey is the idempotency key of one shard placement attempt.
// Deterministic within an incarnation: if the coordinator (or the
// client under it) repeats the same placement after a lost response,
// the backend dedupes the repeat into the already-accepted sub-job —
// exactly-once per backend. The attempt ordinal is part of the key
// because every re-placement AND every speculative duplicate is a new
// logical attempt: keyed identically, a backend would dedupe the
// speculative copy into the original sub-job and speculation would
// silently collapse into a second subscription on the same straggler.
func (co *Coordinator) shardKey(jobID string, index, count, attempt int) string {
	return fmt.Sprintf("c-%s-%s-s%d.%d-a%d", co.nonce, jobID, index, count, attempt)
}

// attempt is one placement of one shard on one backend. A shard has at
// most two live attempts: its primary and a speculative duplicate (or
// the superseded victim of a steal, draining away).
type attempt struct {
	backend     *backend
	key         string
	seq         int  // attempt ordinal within the shard, keys the sub-job
	retry       int  // sh.retries at creation; the span's retry attribute
	speculative bool // duplicate of a running attempt
	stolen      bool // claimed away from a backlogged backend
	born        time.Time

	// ctx cancels this attempt's outbound calls; cancel is invoked when
	// the attempt loses (superseded) or the attempt goroutine returns.
	ctx    context.Context
	cancel context.CancelFunc

	remoteID string // sub-job id on the backend; guarded by shard.mu

	// progress counts streamed events — the steal heuristic's "has this
	// sub-job started at all" signal.
	progress atomic.Int64
	// superseded marks a lost race: the shard finished (or moved)
	// elsewhere and this attempt's death is bookkeeping, not a loss.
	superseded atomic.Bool
}

// shard is one fault-range sub-job of a cluster job.
type shard struct {
	index, count int

	mu         sync.Mutex
	state      string // queued/running/done/failed/cancelled from the cluster's view
	attempts   []*attempt
	attemptSeq int
	retries    int
	lastFailed string // URL of the backend that most recently lost this shard
	// backend/remoteID are the latest placement while running and the
	// winning attempt's once done — diagnostics via Shards.
	backend  *backend
	remoteID string
	result   *service.JobResult
	err      error
}

// ShardStatus is the observable placement state of one shard, exposed
// for diagnostics and tests.
type ShardStatus struct {
	Index    int    `json:"index"`
	Count    int    `json:"count"`
	Backend  string `json:"backend"`
	RemoteID string `json:"remote_id"`
	State    string `json:"state"`
	Retries  int    `json:"retries"`
	Attempts int    `json:"attempts"`
	Error    string `json:"error,omitempty"`
}

// cjob is one cluster-level grading job.
type cjob struct {
	id     string
	spec   service.JobSpec
	shards []*shard
	merge  *merger

	// tctx carries the job's root span (plus the coordinator's
	// recorder); shard-attempt and merge spans start under it, and
	// outbound backend calls inject its traceparent. span is that root,
	// ended once by finalize. Both are set before the dispatch loops
	// start and never reassigned.
	tctx context.Context
	span *trace.Span

	// pubMu serializes merge-and-publish pairs so merged events reach
	// subscribers in block order even when shard streams race.
	pubMu sync.Mutex

	// cancelled is the user's Cancel; aborted additionally covers shard
	// failure fan-outs. Attempt triage consults aborted so the abort's
	// own remote cancels are not mistaken for backend drains (and
	// pointlessly retried); finalize consults cancelled to pick the
	// terminal state.
	cancelled atomic.Bool
	aborted   atomic.Bool

	// smu guards the work-queue state; cond wakes dispatch loops when
	// the queue, in-flight windows, or shard states change.
	smu         sync.Mutex
	cond        *sync.Cond
	queue       []*shard       // shards awaiting (re)placement
	inflight    map[string]int // live attempts per backend URL
	runners     map[string]bool
	runnerCount int // live dispatch loops
	holders     int // live goroutines under runnersWg; 0 is terminal
	remaining   int // shards not yet terminal
	closed      bool
	runnersWg   sync.WaitGroup

	mu     sync.Mutex
	status service.JobStatus
	timing service.Timing
	result *service.JobResult
	subs   []*subscriber
}

// work is one claimed placement: a shard plus the attempt minted for
// the claiming backend.
type work struct {
	sh  *shard
	att *attempt
}

// subscriber buffers merged progress events for one Subscribe caller
// without loss. The merged feed emits every block exactly once, so the
// queue — formally unbounded — is in fact bounded by the job's block
// count. A fixed drop-on-full channel here would lose merged blocks
// whenever a shard rerun catches up after a backend death: the merger
// then emits a burst of gap-filled blocks faster than a consumer
// goroutine is guaranteed to be scheduled.
type subscriber struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []service.ProgressEvent
	done  bool          // terminal: nothing more will be queued
	stop  chan struct{} // closed on cancel: the consumer is gone
}

func newSubscriber() *subscriber {
	sb := &subscriber{stop: make(chan struct{})}
	sb.cond = sync.NewCond(&sb.mu)
	return sb
}

// push appends one event to the queue; a no-op once the feed is
// terminal.
func (sb *subscriber) push(ev service.ProgressEvent) {
	sb.mu.Lock()
	if !sb.done {
		sb.queue = append(sb.queue, ev)
	}
	sb.mu.Unlock()
	sb.cond.Signal()
}

// finish marks the feed terminal; the pump drains what is already
// queued and then closes the consumer channel.
func (sb *subscriber) finish() {
	sb.mu.Lock()
	sb.done = true
	sb.mu.Unlock()
	sb.cond.Broadcast()
}

// next blocks until an event is queued or the feed is terminal and
// drained.
func (sb *subscriber) next() (service.ProgressEvent, bool) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	for len(sb.queue) == 0 && !sb.done {
		sb.cond.Wait()
	}
	if len(sb.queue) == 0 {
		return service.ProgressEvent{}, false
	}
	ev := sb.queue[0]
	sb.queue = sb.queue[1:]
	return ev, true
}

// probe checks one backend's liveness with the configured timeout,
// records the round-trip in the per-backend probe histogram (a dead
// backend observes the timeout it cost the sweep), and on success
// refreshes the backend's capacity hints.
func (co *Coordinator) probe(ctx context.Context, b *backend) error {
	pctx, cancel := context.WithTimeout(ctx, co.opts.ProbeTimeout)
	defer cancel()
	start := co.now()
	st, err := b.cl.Stats(pctx)
	co.met.probeSeconds.With(b.url).Observe(co.now().Sub(start).Seconds())
	if err == nil {
		b.setHints(st.Workers, st.JobsQueued+st.JobsRunning)
	}
	return err
}

// exclude counts and logs one placement decision that passed over a
// flapping backend.
func (co *Coordinator) exclude(b *backend) {
	co.met.exclusions.With(b.url).Inc()
	co.logger.Debug("backend excluded from placement (flapping)", "backend", b.url)
}

// healthyBackends probes every backend concurrently (one ProbeTimeout
// bounds the whole sweep, not each dead backend in turn) and returns
// the live, non-flapping ones in configuration order.
func (co *Coordinator) healthyBackends(ctx context.Context) []*backend {
	ok := make([]bool, len(co.backends))
	var wg sync.WaitGroup
	for i, b := range co.backends {
		if b.flapping(co.opts.MaxBackendFailures) {
			co.exclude(b)
			continue
		}
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			if err := co.probe(ctx, b); err != nil {
				b.markFailure()
				co.logger.Warn("backend unhealthy", "backend", b.url, "err", err)
				return
			}
			ok[i] = true
		}(i, b)
	}
	wg.Wait()
	var out []*backend
	for i, b := range co.backends {
		if ok[i] {
			out = append(out, b)
		}
	}
	return out
}

// reprobeLoop is the dynamic-membership sweep: it periodically probes
// every backend, refreshing capacity hints and re-admitting backends
// that were dead (or flapping) into the dispatch of running jobs.
func (co *Coordinator) reprobeLoop() {
	t := time.NewTicker(co.opts.ReprobeInterval)
	defer t.Stop()
	for {
		select {
		case <-co.stop:
			return
		case <-t.C:
			co.reprobe()
		}
	}
}

func (co *Coordinator) reprobe() {
	var wg sync.WaitGroup
	for _, b := range co.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			if err := co.probe(context.Background(), b); err != nil {
				b.markProbe(false)
				return
			}
			if b.markProbe(true) {
				co.logger.Info("backend recovered, readmitting", "backend", b.url)
			}
			co.admit(b)
		}(b)
	}
	wg.Wait()
}

// admit attaches a dispatch loop for b to every running job that lacks
// one — the work-queue half of dynamic membership. Idempotent:
// startRunner refuses jobs that are finished or already served by b.
func (co *Coordinator) admit(b *backend) {
	co.mu.Lock()
	jobs := make([]*cjob, 0, len(co.jobs))
	for _, j := range co.jobs {
		jobs = append(jobs, j)
	}
	co.mu.Unlock()
	for _, j := range jobs {
		co.startRunner(j, b)
	}
}

// capacity is the in-flight window the coordinator keeps open on b:
// the configured cap, scaled by the workers b reported relative to the
// best-provisioned peer, and shaved when b already carries a standing
// backlog of its own. Backends with no hints yet (never probed, or an
// older server not reporting workers) get the full cap.
func (co *Coordinator) capacity(b *backend) int {
	cap := co.opts.MaxInFlightPerBackend
	w, load := b.hints()
	if w <= 0 {
		return cap
	}
	maxW := w
	for _, x := range co.backends {
		if xw, _ := x.hints(); xw > maxW {
			maxW = xw
		}
	}
	c := (cap*w + maxW - 1) / maxW
	if load > w && c > 1 {
		c--
	}
	if c < 1 {
		c = 1
	}
	return c
}

// Submit partitions the fault universe into ShardsPerBackend shards
// per healthy backend and feeds them through the work queue. Shard 0
// is placed synchronously before Submit returns — the canary — so spec
// validation errors surface here exactly as they do on a direct
// service submit; the rest of the queue, the streams and the merge are
// asynchronous.
func (co *Coordinator) Submit(ctx context.Context, spec service.JobSpec) (string, error) {
	if kind := service.NormalizeKind(spec.Kind); kind != service.KindGrade {
		// Explicit, not silently degraded: fault sharding is what the
		// cluster sells, and only grade jobs have the per-fault
		// independence it needs (atpg and the dynamic orders are
		// sequential over shared ndet/drop state). Other kinds belong
		// on a single backend via the remote generator/orderer.
		return "", fmt.Errorf("cluster: %w %q: fault sharding applies only to grade jobs; submit %s jobs to a single backend",
			service.ErrUnsupportedKind, kind, kind)
	}
	if spec.FaultShard != nil {
		return "", errors.New("cluster: spec must not carry fault_shard; the coordinator assigns shards")
	}
	if spec.StopAtCoverage > 0 {
		return "", errors.New("cluster: stop_at_coverage is not supported on sharded jobs (the cut-off depends on global coverage)")
	}
	healthy := co.healthyBackends(ctx)
	if len(healthy) == 0 {
		return "", errors.New("cluster: no healthy backends")
	}
	count := co.opts.ShardsPerBackend * len(healthy)

	// Coordinator-level idempotency: a caller key that already named a
	// cluster job answers with that job's id instead of fanning out
	// again. The caller's key is consumed here — sub-jobs carry
	// coordinator-minted shard keys instead, because the same caller key
	// on every shard would make the backends dedupe distinct shards into
	// one sub-job.
	callerKey := spec.IdempotencyKey
	spec.IdempotencyKey = ""
	co.mu.Lock()
	if callerKey != "" {
		if id, ok := co.idem[callerKey]; ok {
			co.mu.Unlock()
			return id, nil
		}
	}
	co.seq++
	id := fmt.Sprintf("c%d", co.seq)
	if callerKey != "" {
		co.idem[callerKey] = id
	}
	co.mu.Unlock()

	// A cluster job has no queue of its own before placement starts, so
	// submitted and started coincide and queue wait is zero.
	now := co.now()
	j := &cjob{
		id:        id,
		spec:      spec,
		merge:     newMerger(id, count),
		status:    service.JobStatus{ID: id, Kind: service.KindGrade, State: service.StateRunning},
		timing:    service.Timing{SubmittedAt: now, StartedAt: now},
		inflight:  make(map[string]int),
		runners:   make(map[string]bool),
		remaining: count,
	}
	j.cond = sync.NewCond(&j.smu)
	// The job's root span: it joins the caller's trace when the submit
	// context carries one (a span, or a remote SpanContext from an
	// incoming traceparent), else starts a fresh trace. One trace then
	// covers the whole fan-out — every shard attempt, every backend
	// sub-job, every rerun, steal and speculation, and the merge.
	tctx := trace.WithRecorder(context.Background(), co.traces)
	if sc := trace.SpanContextFromContext(ctx); sc.IsValid() {
		tctx = trace.ContextWithRemote(tctx, sc)
	}
	j.tctx, j.span = trace.Start(tctx, "cluster.grade", trace.Root())
	j.span.SetAttr("kind", service.KindGrade)
	j.span.SetAttr("job", id)
	j.span.SetAttrInt("shards", count)
	j.span.SetAttrInt("backends", len(healthy))
	j.status.TraceID = j.span.Context().TraceID.String()
	for i := 0; i < count; i++ {
		j.shards = append(j.shards, &shard{index: i, count: count, state: service.StateQueued})
	}

	// Canary placement: shard 0 gets a sub-job before Submit returns. A
	// refusal on every healthy backend aborts the job here — the shard
	// spec differs from its siblings only in the shard index, so a spec
	// the whole cluster refuses would refuse 12 times as well. The call
	// runs under the caller's context (their deadline governs it) with
	// the job's span attached, so the sub-job joins the trace.
	canary := j.shards[0]
	sub := spec
	sub.FaultShard = &service.FaultShard{Index: 0, Count: count}
	sub.IdempotencyKey = co.shardKey(id, 0, count, 0)
	pctx := trace.ContextWithSpan(ctx, j.span)
	var (
		canaryWork *work
		canaryB    *backend
		lastErr    error
	)
	for _, b := range healthy {
		if b.flapping(co.opts.MaxBackendFailures) {
			co.exclude(b)
			continue
		}
		rid, err := b.cl.Submit(pctx, sub)
		if err == nil {
			canary.mu.Lock()
			att := co.newAttemptLocked(j, canary, b, false, false)
			att.remoteID = rid
			canary.remoteID = rid
			canary.mu.Unlock()
			canaryWork = &work{sh: canary, att: att}
			canaryB = b
			break
		}
		lastErr = err
		var ae *service.APIError
		if errors.As(err, &ae) {
			// This backend refused the spec. Validation can be
			// server-local (the workers bound depends on each server's
			// core count) or transient (draining), so a refusal here
			// does not condemn the spec everywhere: try the next
			// backend, and only fail the submit when none accepts.
			co.logger.Warn("backend refused shard", "backend", b.url,
				"job", id, "shard", 0, "shards", count, "err", err)
			continue
		}
		b.markFailure()
		co.logger.Warn("submitting shard failed", "backend", b.url,
			"job", id, "shard", 0, "shards", count, "err", err)
	}
	if canaryWork == nil {
		if callerKey != "" {
			co.mu.Lock()
			delete(co.idem, callerKey)
			co.mu.Unlock()
		}
		j.span.SetStatus(trace.StatusError, "placement failed")
		j.span.End()
		return "", fmt.Errorf("cluster: could not place shard 0/%d: %w", count, lastErr)
	}

	co.mu.Lock()
	co.jobs[id] = j
	co.order = append(co.order, id)
	co.evictOldJobsLocked()
	co.mu.Unlock()

	// Queue the remaining shards and start the machinery. The canary's
	// supervisor is the job's first runnersWg holder, so startRunner's
	// liveness guard (holders > 0) admits the dispatch loops.
	j.smu.Lock()
	j.queue = append(j.queue, j.shards[1:]...)
	j.inflight[canaryB.url]++
	j.holders++
	j.runnersWg.Add(1)
	j.smu.Unlock()
	co.wg.Add(1)
	go func() {
		defer co.wg.Done()
		defer func() {
			j.smu.Lock()
			j.inflight[canaryB.url]--
			j.holders--
			j.smu.Unlock()
			j.runnersWg.Done()
			j.cond.Broadcast()
		}()
		pprof.Do(context.Background(),
			pprof.Labels("job", j.id, "shard", fmt.Sprintf("0/%d", count)),
			func(context.Context) { co.runAttempt(j, canaryB, canaryWork) })
	}()
	for _, b := range healthy {
		co.startRunner(j, b)
	}

	// The pacemaker: steal and speculation eligibility turn true with
	// the mere passage of time (an attempt ages past StragglerAfter
	// with no event landing — the very situation where no broadcast is
	// coming), so idle dispatch loops parked in cond.Wait need a
	// periodic nudge to re-scan for work.
	co.wg.Add(1)
	go func() {
		defer co.wg.Done()
		period := co.opts.StragglerAfter / 2
		if period < 10*time.Millisecond {
			period = 10 * time.Millisecond
		}
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				j.smu.Lock()
				closed := j.closed
				j.cond.Broadcast()
				j.smu.Unlock()
				if closed {
					return
				}
			case <-co.stop:
				return
			}
		}
	}()

	// The watcher: once every dispatch loop and attempt has returned,
	// settle whatever is left (shards stranded with no backend to run
	// them) and finalize the job.
	co.wg.Add(1)
	go func() {
		defer co.wg.Done()
		j.runnersWg.Wait()
		j.smu.Lock()
		j.closed = true
		orphans := j.queue
		j.queue = nil
		j.smu.Unlock()
		for _, sh := range append(orphans, j.shards...) {
			if j.aborted.Load() {
				co.settleShard(j, sh, service.StateCancelled, nil)
			} else {
				co.settleShard(j, sh, service.StateFailed, errors.New("no healthy backend available"))
			}
		}
		co.finalize(j)
	}()
	return id, nil
}

// newAttemptLocked mints the next attempt of sh on b. Caller holds
// sh.mu.
func (co *Coordinator) newAttemptLocked(j *cjob, sh *shard, b *backend, speculative, stolen bool) *attempt {
	ctx, cancel := context.WithCancel(j.tctx)
	att := &attempt{
		backend:     b,
		key:         co.shardKey(j.id, sh.index, sh.count, sh.attemptSeq),
		seq:         sh.attemptSeq,
		retry:       sh.retries,
		speculative: speculative,
		stolen:      stolen,
		born:        co.now(),
		ctx:         ctx,
		cancel:      cancel,
	}
	sh.attemptSeq++
	sh.attempts = append(sh.attempts, att)
	sh.state = service.StateRunning
	sh.backend = b
	return att
}

// startRunner attaches one dispatch loop for backend b to job j unless
// the job is finished or b already has one.
func (co *Coordinator) startRunner(j *cjob, b *backend) {
	j.smu.Lock()
	if j.closed || j.holders == 0 || j.runners[b.url] {
		j.smu.Unlock()
		return
	}
	j.runners[b.url] = true
	j.runnerCount++
	j.holders++
	j.runnersWg.Add(1)
	j.smu.Unlock()
	co.wg.Add(1)
	go func() {
		defer co.wg.Done()
		defer func() {
			j.smu.Lock()
			j.runners[b.url] = false
			j.runnerCount--
			j.holders--
			j.smu.Unlock()
			j.runnersWg.Done()
			j.cond.Broadcast()
		}()
		pprof.Do(context.Background(), pprof.Labels("job", j.id, "backend", b.url),
			func(context.Context) { co.backendLoop(j, b) })
	}()
}

// backendLoop is one backend's dispatch loop: pull the next piece of
// work, run it in its own goroutine, repeat until the job is done or
// the backend is struck off. The loop returns only after its attempts
// have drained.
func (co *Coordinator) backendLoop(j *cjob, b *backend) {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		wk := co.nextWork(j, b)
		if wk == nil {
			return
		}
		wg.Add(1)
		j.smu.Lock()
		j.holders++
		j.runnersWg.Add(1)
		j.smu.Unlock()
		go func() {
			defer wg.Done()
			defer func() {
				j.smu.Lock()
				j.inflight[b.url]--
				j.holders--
				j.smu.Unlock()
				j.runnersWg.Done()
				j.cond.Broadcast()
			}()
			pprof.Do(context.Background(),
				pprof.Labels("job", j.id, "shard", fmt.Sprintf("%d/%d", wk.sh.index, wk.sh.count)),
				func(context.Context) { co.runAttempt(j, b, wk) })
		}()
	}
}

// nextWork blocks until b can take on more work for j and claims it:
// a queued shard first, then — only with an empty queue — a steal from
// a backlogged peer, then a speculative duplicate of the slowest
// running shard. Returns nil when the job is finished (or b has been
// struck off) and the loop should exit.
func (co *Coordinator) nextWork(j *cjob, b *backend) *work {
	j.smu.Lock()
	defer j.smu.Unlock()
	for {
		if j.closed || b.flapping(co.opts.MaxBackendFailures) {
			return nil
		}
		if j.inflight[b.url] < co.capacity(b) {
			if wk := co.claimQueuedLocked(j, b); wk != nil {
				return wk
			}
			if len(j.queue) == 0 && !j.aborted.Load() {
				if wk := co.claimStolenLocked(j, b); wk != nil {
					return wk
				}
				if wk := co.claimSpeculativeLocked(j, b); wk != nil {
					return wk
				}
			}
		}
		j.cond.Wait()
	}
}

// claimQueuedLocked takes the first queued shard b may run. A shard
// avoids the backend that most recently lost it while any other
// dispatch loop is alive. Caller holds j.smu.
func (co *Coordinator) claimQueuedLocked(j *cjob, b *backend) *work {
	for i, sh := range j.queue {
		sh.mu.Lock()
		if sh.lastFailed == b.url && j.runnerCount > 1 {
			sh.mu.Unlock()
			continue
		}
		att := co.newAttemptLocked(j, sh, b, false, false)
		sh.mu.Unlock()
		copy(j.queue[i:], j.queue[i+1:])
		j.queue[len(j.queue)-1] = nil
		j.queue = j.queue[:len(j.queue)-1]
		j.inflight[b.url]++
		return &work{sh: sh, att: att}
	}
	return nil
}

// claimStolenLocked steals a shard whose sole attempt sits on a
// backlogged peer with zero streamed progress: the sub-job is still
// waiting in that backend's own queue, so moving it to an idle backend
// loses no work. The victim is cancelled, not duplicated — stealing
// reassigns queued work, speculation duplicates running work. Caller
// holds j.smu.
func (co *Coordinator) claimStolenLocked(j *cjob, b *backend) *work {
	// Count live (non-superseded) attempts per backend up front.
	// j.inflight lags reality here: a stolen victim keeps its inflight
	// slot until its goroutine exits, so a thief scanning in a tight
	// burst would see a stale backlog and strip a backend bare before
	// the first victim ever unwinds. Supersede flips synchronously,
	// so this count cannot double-steal the same backlog.
	live := make(map[string]int, len(j.inflight))
	for _, sh := range j.shards {
		sh.mu.Lock()
		if sh.state == service.StateRunning {
			for _, a := range sh.attempts {
				if !a.superseded.Load() {
					live[a.backend.url]++
				}
			}
		}
		sh.mu.Unlock()
	}
	for _, sh := range j.shards {
		sh.mu.Lock()
		if sh.state != service.StateRunning || len(sh.attempts) != 1 {
			sh.mu.Unlock()
			continue
		}
		victim := sh.attempts[0]
		// Require a genuinely stuck victim: old enough that its first
		// event should long since have landed, still at zero progress,
		// and behind a real backlog (≥2 live attempts) on its backend —
		// otherwise two idle backends would ping-pong fresh placements
		// between them before the first event can land. The last
		// zero-progress attempt on a backend is speculation's to
		// duplicate, not stealing's to cancel.
		if victim.backend == b || victim.progress.Load() > 0 ||
			victim.superseded.Load() || live[victim.backend.url] < 2 ||
			co.now().Sub(victim.born) < co.opts.StragglerAfter {
			sh.mu.Unlock()
			continue
		}
		victim.superseded.Store(true)
		rid := victim.remoteID
		att := co.newAttemptLocked(j, sh, b, false, true)
		sh.mu.Unlock()
		victim.cancel()
		go co.cancelRemote(j.tctx, j, victim.backend, rid, "stolen")
		co.met.shardsStolen.Inc()
		co.logger.InfoContext(j.tctx, "shard stolen from backlogged backend",
			"job", j.id, "shard", sh.index, "from", victim.backend.url, "to", b.url)
		j.inflight[b.url]++
		return &work{sh: sh, att: att}
	}
	return nil
}

// claimSpeculativeLocked duplicates the least-progressed running shard
// on an otherwise idle backend — the MapReduce backup task. The merge
// is bit-identical, so whichever attempt finishes first yields the
// same job; the loser is cancelled. At most two live attempts per
// shard. Caller holds j.smu.
func (co *Coordinator) claimSpeculativeLocked(j *cjob, b *backend) *work {
	var pick *shard
	var pickProgress int64
	for _, sh := range j.shards {
		sh.mu.Lock()
		ok := sh.state == service.StateRunning && len(sh.attempts) == 1 &&
			sh.attempts[0].backend != b && !sh.attempts[0].superseded.Load() &&
			co.now().Sub(sh.attempts[0].born) >= co.opts.StragglerAfter
		var p int64
		if ok {
			p = sh.attempts[0].progress.Load()
		}
		sh.mu.Unlock()
		if ok && (pick == nil || p < pickProgress) {
			pick, pickProgress = sh, p
		}
	}
	if pick == nil {
		return nil
	}
	pick.mu.Lock()
	// Re-validate: the shard may have finished between scan and claim.
	if pick.state != service.StateRunning || len(pick.attempts) != 1 || pick.attempts[0].backend == b {
		pick.mu.Unlock()
		return nil
	}
	att := co.newAttemptLocked(j, pick, b, true, false)
	pick.mu.Unlock()
	co.met.shardsSpeculated.Inc()
	co.logger.InfoContext(j.tctx, "speculating tail shard on idle backend",
		"job", j.id, "shard", pick.index, "backend", b.url)
	j.inflight[b.url]++
	return &work{sh: pick, att: att}
}

// runAttempt drives one attempt: submit the sub-job (unless the canary
// already did), stream it, and triage the outcome. One span per
// attempt on the cluster job's trace.
func (co *Coordinator) runAttempt(j *cjob, b *backend, wk *work) {
	sh, att := wk.sh, wk.att
	defer att.cancel()
	defer func() {
		removeAttempt(sh, att)
		j.cond.Broadcast()
	}()
	ctx, span := trace.Start(att.ctx, "shard")
	defer span.End()
	span.SetAttrInt("shard", sh.index)
	span.SetAttr("backend", b.url)
	span.SetAttrInt("retry", att.retry)
	if att.stolen {
		span.SetAttr("steal", "true")
	}
	if att.speculative {
		span.SetAttr("speculate", "true")
	}

	sh.mu.Lock()
	rid := att.remoteID
	sh.mu.Unlock()
	if rid == "" {
		sub := j.spec
		sub.FaultShard = &service.FaultShard{Index: sh.index, Count: sh.count}
		sub.IdempotencyKey = att.key
		var err error
		rid, err = b.cl.Submit(ctx, sub)
		if err != nil {
			span.SetStatus(trace.StatusError, err.Error())
			co.attemptLost(ctx, j, b, sh, att, err, true)
			return
		}
		sh.mu.Lock()
		att.remoteID = rid
		sh.remoteID = rid
		sh.mu.Unlock()
	}
	span.SetAttr("remote_id", rid)

	if j.aborted.Load() {
		// An abort that raced this placement may have missed the
		// sub-job (the fan-out snapshots live attempts); cancel it here
		// so the backend stops and the stream below terminates.
		co.cancelRemote(ctx, j, b, rid, "abort-race")
	}
	st, err := b.cl.Stream(ctx, rid, func(ev service.ProgressEvent) {
		att.progress.Add(1)
		j.pubMu.Lock()
		co.publish(j, j.merge.update(sh.index, ev))
		j.pubMu.Unlock()
	})
	if err == nil {
		switch st.State {
		case service.StateDone:
			res, rerr := b.cl.Result(ctx, rid)
			if rerr == nil {
				b.markOK()
				if co.completeShard(j, sh, att, st, res) {
					span.SetStatus(trace.StatusOK, "")
				} else {
					// A sibling attempt finished first; this result is
					// the bit-identical duplicate and is dropped.
					span.SetStatus(trace.StatusOK, "superseded")
				}
				return
			}
			// Transport failure or a refusal (e.g. the finished job
			// was evicted before the fetch): the shared triage below
			// retries what a rerun can recover and fails the rest.
			err = rerr
		case service.StateCancelled:
			if j.aborted.Load() {
				co.settleShard(j, sh, service.StateCancelled, nil)
				return
			}
			if att.superseded.Load() {
				// Our own steal/supersede cancel echoing back.
				return
			}
			// The backend cancelled the sub-job on its own — a
			// graceful drain (SIGTERM) rather than our fan-out. To
			// the cluster that is a lost shard like any other death:
			// requeue it for a surviving backend.
			err = fmt.Errorf("backend %s cancelled sub-job %s (draining?)", b.url, rid)
		case service.StateFailed:
			span.SetStatus(trace.StatusError, st.Error)
			if !att.superseded.Load() {
				co.failShard(ctx, j, sh, fmt.Errorf("backend %s: %s", b.url, st.Error))
			}
			return
		default:
			err = fmt.Errorf("stream of %s on %s ended in non-terminal state %q", rid, b.url, st.State)
		}
	}
	span.SetStatus(trace.StatusError, err.Error())
	co.attemptLost(ctx, j, b, sh, att, err, false)
}

// removeAttempt unlinks att from its shard (idempotent) and returns
// how many live attempts remain.
func removeAttempt(sh *shard, att *attempt) int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i, a := range sh.attempts {
		if a == att {
			copy(sh.attempts[i:], sh.attempts[i+1:])
			sh.attempts[len(sh.attempts)-1] = nil
			sh.attempts = sh.attempts[:len(sh.attempts)-1]
			break
		}
	}
	return len(sh.attempts)
}

// attemptLost triages a non-terminal attempt outcome: drop it when a
// duplicate still covers the shard or the loss is our own supersede,
// otherwise requeue the shard (bounded by MaxShardRetries). The
// attempt is unlinked first so two concurrent losses cannot each see
// the other as a live sibling and orphan the shard.
func (co *Coordinator) attemptLost(lctx context.Context, j *cjob, b *backend, sh *shard, att *attempt, err error, submitting bool) {
	siblings := removeAttempt(sh, att)
	if att.superseded.Load() {
		// The error is self-inflicted — our own steal or supersede
		// cancelled this attempt's context — so it says nothing about
		// the backend's health.
		return
	}
	var apiErr *service.APIError
	isAPI := errors.As(err, &apiErr)
	if !isAPI {
		b.markFailure()
	}
	if isAPI && !submitting && !errors.Is(err, service.ErrNotFound) {
		// The backend answered but refused mid-flight: not a transport
		// failure, and retrying elsewhere cannot help a spec-level
		// refusal. (A refused *submit* is different — draining and
		// admission-control refusals are backend-local, so the shard
		// goes back in the queue for another backend.)
		if siblings > 0 {
			return
		}
		co.failShard(lctx, j, sh, err)
		return
	}
	if j.aborted.Load() {
		co.settleShard(j, sh, service.StateCancelled, nil)
		return
	}
	if siblings > 0 {
		// A live duplicate still covers the shard: drop this attempt
		// rather than queue a third copy.
		co.logger.DebugContext(lctx, "shard attempt lost, duplicate continues",
			"backend", b.url, "job", j.id, "shard", sh.index, "err", err)
		return
	}
	sh.mu.Lock()
	if terminalState(sh.state) {
		sh.mu.Unlock()
		return
	}
	sh.retries++
	retries := sh.retries
	sh.lastFailed = b.url
	if retries > co.opts.MaxShardRetries {
		sh.mu.Unlock()
		co.failShard(lctx, j, sh, fmt.Errorf("shard %d/%d: %d retries exhausted, last error: %v",
			sh.index, sh.count, co.opts.MaxShardRetries, err))
		return
	}
	sh.state = service.StateQueued
	sh.mu.Unlock()
	co.met.shardRetries.Inc()
	co.logger.WarnContext(lctx, "shard lost, requeueing", "backend", b.url,
		"job", j.id, "shard", sh.index, "shards", sh.count, "err", err)
	j.smu.Lock()
	j.queue = append(j.queue, sh)
	j.smu.Unlock()
	j.cond.Broadcast()
}

// completeShard claims sh's terminal transition for att's result.
// Returns false when a sibling attempt won the race (the caller's
// result is the bit-identical duplicate). The winner feeds the merger
// and cancels the losing attempts.
func (co *Coordinator) completeShard(j *cjob, sh *shard, att *attempt, st service.JobStatus, res *service.JobResult) bool {
	type loser struct {
		att *attempt
		rid string
	}
	sh.mu.Lock()
	if terminalState(sh.state) {
		sh.mu.Unlock()
		return false
	}
	sh.state = service.StateDone
	sh.result = res
	sh.backend = att.backend
	sh.remoteID = att.remoteID
	var losers []loser
	for _, a := range sh.attempts {
		if a == att {
			continue
		}
		a.superseded.Store(true)
		losers = append(losers, loser{att: a, rid: a.remoteID})
	}
	sh.mu.Unlock()
	if att.speculative {
		co.met.speculationWins.Inc()
		co.logger.InfoContext(j.tctx, "speculative duplicate won",
			"job", j.id, "shard", sh.index, "backend", att.backend.url)
	}
	for _, l := range losers {
		l.att.cancel()
		go co.cancelRemote(j.tctx, j, l.att.backend, l.rid, "superseded")
	}
	j.pubMu.Lock()
	j.merge.markDone(sh.index, st)
	co.publish(j, j.merge.collect())
	j.pubMu.Unlock()
	co.shardSettled(j)
	return true
}

// settleShard claims sh's terminal transition to a failed or cancelled
// state; false means another caller already settled it. Remaining
// attempts are superseded and their contexts cancelled (their remote
// sub-jobs are the abort fan-out's job).
func (co *Coordinator) settleShard(j *cjob, sh *shard, state string, err error) bool {
	sh.mu.Lock()
	if terminalState(sh.state) {
		sh.mu.Unlock()
		return false
	}
	sh.state = state
	sh.err = err
	others := append([]*attempt(nil), sh.attempts...)
	sh.mu.Unlock()
	for _, a := range others {
		a.superseded.Store(true)
		a.cancel()
	}
	co.shardSettled(j)
	return true
}

// shardSettled accounts one shard reaching a terminal state; the last
// one closes the work queue and wakes every dispatch loop to exit.
func (co *Coordinator) shardSettled(j *cjob) {
	j.smu.Lock()
	j.remaining--
	if j.remaining <= 0 {
		j.closed = true
	}
	j.smu.Unlock()
	j.cond.Broadcast()
}

// failShard records a shard failure and aborts the job: with one shard
// unrecoverable the merge can never complete, so every other sub-job
// is stopped rather than graded to no end.
func (co *Coordinator) failShard(lctx context.Context, j *cjob, sh *shard, err error) {
	if !co.settleShard(j, sh, service.StateFailed, err) {
		return
	}
	co.logger.WarnContext(lctx, "shard failed, aborting job",
		"job", j.id, "shard", sh.index, "err", err)
	co.abortJob(j)
}

// abortJob stops all outstanding work on j: queued shards settle
// immediately, live attempts' sub-jobs get a remote cancel. Shards
// with in-flight attempts settle when those attempts observe the
// cancellation.
func (co *Coordinator) abortJob(j *cjob) {
	j.aborted.Store(true)
	j.smu.Lock()
	queued := j.queue
	j.queue = nil
	j.smu.Unlock()
	for _, sh := range queued {
		co.settleShard(j, sh, service.StateCancelled, nil)
	}
	type rc struct {
		b   *backend
		rid string
	}
	var rcs []rc
	for _, sh := range j.shards {
		sh.mu.Lock()
		for _, a := range sh.attempts {
			if a.remoteID != "" {
				rcs = append(rcs, rc{b: a.backend, rid: a.remoteID})
			}
		}
		sh.mu.Unlock()
	}
	for _, r := range rcs {
		go co.cancelRemote(j.tctx, j, r.b, r.rid, "abort")
	}
	j.cond.Broadcast()
}

// cancelRemote cancels one sub-job, logging failures with the job's
// trace context: a cancel that silently fails leaves a backend grading
// work nobody will read, and the log line is the only witness. Benign
// refusals — the sub-job already finished or was evicted — are not
// failures.
func (co *Coordinator) cancelRemote(lctx context.Context, j *cjob, b *backend, rid, why string) {
	if rid == "" {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), co.opts.ProbeTimeout)
	defer cancel()
	if _, err := b.cl.Cancel(ctx, rid); err != nil &&
		!errors.Is(err, service.ErrFinished) && !errors.Is(err, service.ErrNotFound) {
		co.logger.WarnContext(lctx, "cancelling sub-job failed", "backend", b.url,
			"job", j.id, "remote_id", rid, "reason", why, "err", err)
	}
}

// finalize runs once every dispatch loop and attempt has returned: it
// merges the shard results (all-done), or settles on the
// failed/cancelled state, updates the cluster status and closes every
// subscriber channel.
func (co *Coordinator) finalize(j *cjob) {
	state := service.StateDone
	var firstErr error
	for _, sh := range j.shards {
		sh.mu.Lock()
		shState, shErr := sh.state, sh.err
		sh.mu.Unlock()
		switch shState {
		case service.StateFailed:
			state = service.StateFailed
			if firstErr == nil {
				firstErr = shErr
			}
		case service.StateCancelled:
			if state != service.StateFailed {
				state = service.StateCancelled
			}
		}
	}
	if j.cancelled.Load() && state != service.StateFailed {
		state = service.StateCancelled
	}

	var merged *service.JobResult
	if state == service.StateDone {
		results := make([]*service.JobResult, len(j.shards))
		for i, sh := range j.shards {
			sh.mu.Lock()
			results[i] = sh.result
			sh.mu.Unlock()
		}
		var err error
		_, msp := trace.Start(j.tctx, "merge")
		msp.SetAttrInt("shards", len(results))
		mergeStart := co.now()
		merged, err = MergeResults(j.id, results)
		mergeDur := co.now().Sub(mergeStart)
		if err != nil {
			msp.SetStatus(trace.StatusError, err.Error())
		}
		msp.End()
		co.met.mergeSeconds.Observe(mergeDur.Seconds())
		j.mu.Lock()
		j.timing.AddPhase(service.PhaseMerge, mergeDur)
		j.mu.Unlock()
		if err != nil {
			state = service.StateFailed
			firstErr = err
		}
	}
	// The merged result is the job's only retained payload; the
	// per-shard copies would double its memory for no reader.
	for _, sh := range j.shards {
		sh.mu.Lock()
		sh.result = nil
		sh.mu.Unlock()
	}

	j.mu.Lock()
	j.status.State = state
	j.timing.FinishedAt = co.now()
	j.timing.RunSeconds = j.timing.FinishedAt.Sub(j.timing.StartedAt).Seconds()
	timing := j.timing.Snapshot()
	j.status.Timing = timing
	if merged != nil {
		// The merged result carries the cluster job's own timing — the
		// fan-out's wall clock and merge phase, not any single backend's
		// run (those are visible on the sub-jobs' own wires).
		merged.Timing = timing
		merged.TraceID = j.status.TraceID
		j.result = merged
		j.status.Circuit = merged.Circuit
		j.status.Faults = merged.Faults
		j.status.Vectors = merged.Vectors
		j.status.VectorsUsed = merged.VectorsUsed
		j.status.Detected = merged.Detected
	}
	if firstErr != nil {
		j.status.Error = firstErr.Error()
	}
	subs := j.subs
	j.subs = nil
	j.mu.Unlock()
	co.met.jobsTotal.With(state).Inc()
	// The root span ends before subscribers wake: a caller unblocked by
	// the terminal status finds the completed trace in the recorder.
	j.span.SetAttr("state", state)
	if firstErr != nil {
		j.span.SetStatus(trace.StatusError, firstErr.Error())
	} else {
		j.span.SetStatus(trace.StatusOK, "")
	}
	j.span.End()
	for _, sb := range subs {
		sb.finish()
	}
}

// publish forwards merged progress events to the cluster job's status
// and subscribers. Pushes never block — each subscriber owns a lossless
// queue its pump goroutine drains — so the merged feed stays contiguous
// even when a rerun's catch-up emits a whole job's worth of blocks in
// one burst.
func (co *Coordinator) publish(j *cjob, evs []service.ProgressEvent) {
	for _, ev := range evs {
		j.mu.Lock()
		if terminalState(j.status.State) {
			j.mu.Unlock()
			return
		}
		j.status.BlocksDone = ev.Block + 1
		j.status.Blocks = ev.Blocks
		j.status.VectorsUsed = ev.VectorsUsed
		j.status.Detected = ev.Detected
		j.status.Active = ev.Active
		subs := append([]*subscriber(nil), j.subs...)
		j.mu.Unlock()
		for _, sb := range subs {
			sb.push(ev)
		}
	}
}

func terminalState(s string) bool {
	return s == service.StateDone || s == service.StateFailed || s == service.StateCancelled
}

// evictOldJobsLocked drops the oldest finished cluster jobs once the
// retained set exceeds the configured bound, exactly as the service
// does for its own jobs. Caller holds co.mu.
func (co *Coordinator) evictOldJobsLocked() {
	excess := len(co.order) - co.opts.MaxRetainedJobs
	if excess <= 0 {
		return
	}
	kept := co.order[:0]
	for _, id := range co.order {
		j := co.jobs[id]
		j.mu.Lock()
		done := terminalState(j.status.State)
		j.mu.Unlock()
		if excess > 0 && done {
			delete(co.jobs, id)
			for key, jid := range co.idem {
				if jid == id {
					delete(co.idem, key)
				}
			}
			excess--
			continue
		}
		kept = append(kept, id)
	}
	co.order = kept
}

func (co *Coordinator) job(id string) *cjob {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.jobs[id]
}

// Status returns the merged status of a cluster job. Identity fields
// (circuit, fault count) fill in when the job completes; the progress
// fields track the merged per-block frontier while it runs.
func (co *Coordinator) Status(ctx context.Context, id string) (service.JobStatus, error) {
	j := co.job(id)
	if j == nil {
		return service.JobStatus{}, service.ErrNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, nil
}

// Result returns the merged grading outcome of a finished cluster job,
// with the same error contract as the service: ErrNotDone while
// running, ErrCancelled after a cancel, the failure for failed jobs.
func (co *Coordinator) Result(ctx context.Context, id string) (*service.JobResult, error) {
	j := co.job(id)
	if j == nil {
		return nil, service.ErrNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status.State {
	case service.StateDone:
		return j.result, nil
	case service.StateFailed:
		return nil, fmt.Errorf("cluster: job %s failed: %s", id, j.status.Error)
	case service.StateCancelled:
		return nil, fmt.Errorf("%w (job %s)", service.ErrCancelled, id)
	}
	return nil, service.ErrNotDone
}

// Cancel aborts a cluster job: the queue is drained and a cancel fans
// out to every live sub-job; each backend stops at its next 64-pattern
// block barrier. Idempotent on cancelled jobs; ErrFinished after
// completion.
func (co *Coordinator) Cancel(ctx context.Context, id string) (service.JobStatus, error) {
	j := co.job(id)
	if j == nil {
		return service.JobStatus{}, service.ErrNotFound
	}
	j.mu.Lock()
	switch j.status.State {
	case service.StateDone, service.StateFailed:
		st := j.status
		j.mu.Unlock()
		return st, service.ErrFinished
	case service.StateCancelled:
		st := j.status
		j.mu.Unlock()
		return st, nil
	}
	st := j.status
	j.mu.Unlock()
	j.cancelled.Store(true)
	co.abortJob(j)
	return st, nil
}

// Subscribe returns a channel of merged per-block progress events for
// a cluster job and a cancel function; the channel closes when the job
// reaches a terminal state (immediately for finished jobs).
func (co *Coordinator) Subscribe(id string) (<-chan service.ProgressEvent, func(), bool) {
	j := co.job(id)
	if j == nil {
		return nil, nil, false
	}
	ch := make(chan service.ProgressEvent, 16)
	j.mu.Lock()
	if terminalState(j.status.State) {
		j.mu.Unlock()
		close(ch)
		return ch, func() {}, true
	}
	sb := newSubscriber()
	j.subs = append(j.subs, sb)
	j.mu.Unlock()
	// The pump decouples the publisher from the consumer: events queue
	// losslessly in sb and flow into ch at the consumer's pace. On
	// cancel the pump abandons the queue instead of blocking forever on
	// a send nobody will receive.
	go func() {
		defer close(ch)
		for {
			ev, ok := sb.next()
			if !ok {
				return
			}
			select {
			case ch <- ev:
			case <-sb.stop:
				return
			}
		}
	}()
	var once sync.Once
	cancel := func() {
		once.Do(func() { close(sb.stop) })
		sb.finish()
		j.mu.Lock()
		for i, s := range j.subs {
			if s == sb {
				// Shift-and-truncate with a nilled tail slot so the
				// backing array does not pin the dead subscriber (and
				// its queued events) until overwritten.
				copy(j.subs[i:], j.subs[i+1:])
				j.subs[len(j.subs)-1] = nil
				j.subs = j.subs[:len(j.subs)-1]
				break
			}
		}
		j.mu.Unlock()
	}
	return ch, cancel, true
}

// Stream delivers merged progress events until the cluster job reaches
// a terminal state and returns the final status. ctx aborts the
// subscription, not the job.
func (co *Coordinator) Stream(ctx context.Context, id string, fn func(service.ProgressEvent)) (service.JobStatus, error) {
	ch, cancel, ok := co.Subscribe(id)
	if !ok {
		return service.JobStatus{}, service.ErrNotFound
	}
	defer cancel()
	for {
		select {
		case <-ctx.Done():
			return service.JobStatus{}, ctx.Err()
		case ev, open := <-ch:
			if !open {
				return co.Status(ctx, id)
			}
			if fn != nil {
				fn(ev)
			}
		}
	}
}

// Shards returns the per-shard placement state of a cluster job, for
// diagnostics. Backend and RemoteID name the latest placement while
// the shard runs and the winning attempt once it is done.
func (co *Coordinator) Shards(id string) ([]ShardStatus, error) {
	j := co.job(id)
	if j == nil {
		return nil, service.ErrNotFound
	}
	out := make([]ShardStatus, len(j.shards))
	for i, sh := range j.shards {
		sh.mu.Lock()
		st := ShardStatus{
			Index:    sh.index,
			Count:    sh.count,
			RemoteID: sh.remoteID,
			State:    sh.state,
			Retries:  sh.retries,
			Attempts: sh.attemptSeq,
		}
		if sh.backend != nil {
			st.Backend = sh.backend.url
		}
		if sh.err != nil {
			st.Error = sh.err.Error()
		}
		sh.mu.Unlock()
		out[i] = st
	}
	return out, nil
}

// Stats sums the service counters of every reachable backend, fetched
// concurrently so a dead backend costs one ProbeTimeout in total, not
// per backend; it contributes nothing rather than failing the
// aggregate.
func (co *Coordinator) Stats(ctx context.Context) (service.Stats, error) {
	stats := make([]*service.Stats, len(co.backends))
	var wg sync.WaitGroup
	for i, b := range co.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, co.opts.ProbeTimeout)
			defer cancel()
			st, err := b.cl.Stats(pctx)
			if err != nil {
				co.logger.Warn("fetching backend stats failed", "backend", b.url, "err", err)
				return
			}
			stats[i] = &st
		}(i, b)
	}
	wg.Wait()
	var out service.Stats
	for _, st := range stats {
		if st == nil {
			continue
		}
		out.JobsSubmitted += st.JobsSubmitted
		out.JobsDone += st.JobsDone
		out.JobsFailed += st.JobsFailed
		out.JobsCancelled += st.JobsCancelled
		out.JobsRunning += st.JobsRunning
		out.JobsQueued += st.JobsQueued
		out.Workers += st.Workers
		out.Registry.CircuitHits += st.Registry.CircuitHits
		out.Registry.CircuitMisses += st.Registry.CircuitMisses
		out.Registry.CircuitEvictions += st.Registry.CircuitEvictions
		out.Registry.GoodHits += st.Registry.GoodHits
		out.Registry.GoodMisses += st.Registry.GoodMisses
		out.Registry.GoodEvictions += st.Registry.GoodEvictions
		out.Registry.Circuits += st.Registry.Circuits
		out.Registry.Goods += st.Registry.Goods
	}
	return out, nil
}

// Jobs returns the status of every cluster job in submission order.
func (co *Coordinator) Jobs() []service.JobStatus {
	co.mu.Lock()
	ids := append([]string(nil), co.order...)
	co.mu.Unlock()
	out := make([]service.JobStatus, 0, len(ids))
	for _, id := range ids {
		if st, err := co.Status(context.Background(), id); err == nil {
			out = append(out, st)
		}
	}
	return out
}

// Close stops the membership re-probe loop and waits for every
// submitted cluster job's orchestration to finish (cancel them first
// for a fast shutdown).
func (co *Coordinator) Close() error {
	co.stopOnce.Do(func() { close(co.stop) })
	co.wg.Wait()
	return nil
}
