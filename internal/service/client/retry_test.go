package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/eda-go/adifo/internal/obs"
	"github.com/eda-go/adifo/internal/service"
)

// flakyTransport forwards requests to the real transport but, for the
// first n submit POSTs, swallows the response after the server has
// processed it and reports a transport error instead — the
// acknowledged-but-unobserved failure mode that makes naive retries
// duplicate jobs.
type flakyTransport struct {
	inner http.RoundTripper
	fails atomic.Int32
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := f.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if req.Method == http.MethodPost && strings.HasSuffix(req.URL.Path, "/v1/jobs") &&
		f.fails.Add(-1) >= 0 {
		resp.Body.Close()
		return nil, errors.New("flaky: connection reset mid-response")
	}
	return resp, nil
}

// TestClientSubmitRetriesFlakyTransport: a submit whose response is
// lost is retried with the same auto-generated idempotency key, so
// the server deduplicates the retry into the job it already accepted
// — one job, not two.
func TestClientSubmitRetriesFlakyTransport(t *testing.T) {
	svc := service.New(service.Config{Logger: obs.Nop()})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	ft := &flakyTransport{inner: srv.Client().Transport}
	ft.fails.Store(1)
	cl := New(srv.URL, &http.Client{Transport: ft})

	id, err := cl.Submit(context.Background(), service.JobSpec{
		Circuit:  "c17",
		Mode:     "drop",
		Patterns: service.PatternSpec{Random: &service.RandomSpec{N: 64, Seed: 1}},
	})
	if err != nil {
		t.Fatalf("submit through flaky transport: %v", err)
	}
	jobs, err := cl.Jobs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != id {
		t.Fatalf("server has %d jobs after retried submit, want exactly the one returned (%s): %+v",
			len(jobs), id, jobs)
	}
	stats, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.JobsDeduped != 1 {
		t.Errorf("JobsDeduped = %d, want 1 (the retry)", stats.JobsDeduped)
	}
}

// TestClientSubmitGivesUpAfterRetries: a transport that never
// delivers exhausts the attempt budget and surfaces the error.
func TestClientSubmitGivesUpAfterRetries(t *testing.T) {
	svc := service.New(service.Config{Logger: obs.Nop()})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	ft := &flakyTransport{inner: srv.Client().Transport}
	ft.fails.Store(1000)
	cl := New(srv.URL, &http.Client{Transport: ft})
	_, err := cl.Submit(context.Background(), service.JobSpec{
		Circuit:  "c17",
		Mode:     "drop",
		Patterns: service.PatternSpec{Random: &service.RandomSpec{N: 64, Seed: 1}},
	})
	if err == nil {
		t.Fatal("submit succeeded through a dead transport")
	}
	// All attempts landed on the server under one key: still one job.
	if jobs, jerr := cl.Jobs(context.Background()); jerr == nil && len(jobs) > 1 {
		t.Errorf("server accumulated %d jobs from one logical submit", len(jobs))
	}
}

// overloadedThenAccept serves 429 overloaded (with Retry-After) for
// the first n submits, then accepts.
func overloadedThenAccept(n int32, retryAfter string) (*atomic.Int32, http.HandlerFunc) {
	var posts atomic.Int32
	return &posts, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if posts.Add(1) <= n {
			w.Header().Set("Retry-After", retryAfter)
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"code":"overloaded","message":"queue full"}}`))
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"j1"}`))
	}
}

// TestClientSubmitHonorsRetryAfter: an overloaded 429 is waited out
// for the server's Retry-After and resubmitted — the transient blip
// never surfaces to the caller.
func TestClientSubmitHonorsRetryAfter(t *testing.T) {
	defer func(u time.Duration) { retryAfterUnit = u }(retryAfterUnit)
	retryAfterUnit = time.Millisecond
	posts, h := overloadedThenAccept(2, "1")
	srv := httptest.NewServer(h)
	defer srv.Close()
	cl := New(srv.URL, srv.Client())
	id, err := cl.Submit(context.Background(), service.JobSpec{Circuit: "c17"})
	if err != nil {
		t.Fatalf("submit through transient overload: %v", err)
	}
	if id != "j1" {
		t.Errorf("id = %q, want j1", id)
	}
	if got := posts.Load(); got != 3 {
		t.Errorf("server saw %d submit attempts, want 3 (two 429s waited out)", got)
	}
}

// TestClientSubmitRetryAfterCapped: a pathological Retry-After cannot
// stall the submit past maxRetryAfterWait per attempt.
func TestClientSubmitRetryAfterCapped(t *testing.T) {
	defer func(u, m time.Duration) { retryAfterUnit, maxRetryAfterWait = u, m }(retryAfterUnit, maxRetryAfterWait)
	retryAfterUnit, maxRetryAfterWait = time.Minute, 5*time.Millisecond
	posts, h := overloadedThenAccept(1, "3600")
	srv := httptest.NewServer(h)
	defer srv.Close()
	cl := New(srv.URL, srv.Client())
	start := time.Now()
	if _, err := cl.Submit(context.Background(), service.JobSpec{Circuit: "c17"}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("submit stalled %v on a 3600s Retry-After; cap did not apply", elapsed)
	}
	if got := posts.Load(); got != 2 {
		t.Errorf("server saw %d submit attempts, want 2", got)
	}
}

// TestClientSubmitRetryAfterOptOut: WithoutRetryAfterWait surfaces the
// typed overloaded error on the first 429 — the Retry-After backoff
// policy belongs to the caller, as it did before the client waited.
func TestClientSubmitRetryAfterOptOut(t *testing.T) {
	posts, h := overloadedThenAccept(1000, "7")
	srv := httptest.NewServer(h)
	defer srv.Close()
	cl := New(srv.URL, srv.Client(), WithoutRetryAfterWait())
	_, err := cl.Submit(context.Background(), service.JobSpec{Circuit: "c17"})
	if !errors.Is(err, service.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var apiErr *service.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err %v is not an APIError", err)
	}
	if apiErr.RetryAfter != 7 {
		t.Errorf("RetryAfter = %d, want 7 (parsed from the header)", apiErr.RetryAfter)
	}
	if got := posts.Load(); got != 1 {
		t.Errorf("server saw %d submit attempts, want 1 (opt-out disables the wait)", got)
	}
}

// TestClientSubmitNoRetryOnAPIError: non-overload typed refusals
// (validation and friends) are never retried — resubmitting a
// spec-level refusal cannot change the answer.
func TestClientSubmitNoRetryOnAPIError(t *testing.T) {
	var posts atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":{"code":"invalid_spec","message":"no such circuit"}}`))
	}))
	defer srv.Close()
	cl := New(srv.URL, srv.Client())
	_, err := cl.Submit(context.Background(), service.JobSpec{Circuit: "nope"})
	var apiErr *service.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err %v is not an APIError", err)
	}
	if got := posts.Load(); got != 1 {
		t.Errorf("server saw %d submit attempts, want 1 (no retry on typed errors)", got)
	}
}

// TestClientSubmitKeepsCallerKey: an explicit idempotency key is
// forwarded untouched, not replaced by an auto-generated one.
func TestClientSubmitKeepsCallerKey(t *testing.T) {
	svc := service.New(service.Config{Logger: obs.Nop()})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	cl := New(srv.URL, srv.Client())

	spec := service.JobSpec{
		Circuit:        "c17",
		Mode:           "drop",
		IdempotencyKey: "caller-key",
		Patterns:       service.PatternSpec{Random: &service.RandomSpec{N: 64, Seed: 1}},
	}
	id1, err := cl.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := cl.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("caller key did not dedupe: %s vs %s", id1, id2)
	}
}

// TestParseRetryAfter covers both header forms RFC 9110 allows: delta
// seconds and an HTTP-date. Dates convert to ceil'd whole seconds from
// now; the past, zero, and garbage all mean "no wait".
func TestParseRetryAfter(t *testing.T) {
	// now carries a fraction of a second: HTTP-dates have whole-second
	// resolution, so every date delta is fractional and must ceil.
	now := time.Date(2026, 8, 8, 12, 0, 0, 300e6, time.UTC)
	cases := []struct {
		name string
		v    string
		want int
	}{
		{"delta seconds", "7", 7},
		{"zero delta", "0", 0},
		{"negative delta", "-3", 0},
		{"http date ahead ceils", now.Add(30 * time.Second).UTC().Format(http.TimeFormat), 30},
		{"http date fractional ceils", now.Add(2 * time.Second).UTC().Format(http.TimeFormat), 2},
		{"http date past", now.Add(-time.Minute).UTC().Format(http.TimeFormat), 0},
		{"http date now truncates to past", now.UTC().Format(http.TimeFormat), 0},
		{"garbage", "soon", 0},
		{"empty", "", 0},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.v, now); got != tc.want {
			t.Errorf("%s: parseRetryAfter(%q) = %d, want %d", tc.name, tc.v, got, tc.want)
		}
	}
}

// TestClientSubmitHonorsRetryAfterDate: the wait path accepts the
// HTTP-date form end to end, not just the delta-seconds form.
func TestClientSubmitHonorsRetryAfterDate(t *testing.T) {
	defer func(u time.Duration) { retryAfterUnit = u }(retryAfterUnit)
	retryAfterUnit = time.Millisecond
	date := time.Now().Add(2 * time.Second).UTC().Format(http.TimeFormat)
	hits, h := overloadedThenAccept(1, date)
	srv := httptest.NewServer(h)
	defer srv.Close()
	cl := New(srv.URL, srv.Client())
	id, err := cl.Submit(context.Background(), service.JobSpec{
		Circuit: "c17", Mode: "drop",
		Patterns: service.PatternSpec{Random: &service.RandomSpec{N: 16, Seed: 1}},
	})
	if err != nil {
		t.Fatalf("submit through dated 429: %v", err)
	}
	if id == "" || hits.Load() < 2 {
		t.Fatalf("id %q after %d attempts, want a retry after the dated 429", id, hits.Load())
	}
}
