package service

import (
	"fmt"
	"github.com/eda-go/adifo/internal/obs"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestEngineMixedKindsStress hammers one engine with all three job
// kinds at once — concurrent submits, subscribers, cancels and a
// final drain — and asserts the invariants the multi-kind refactor
// must preserve: no deadlock, no leaked goroutines, every job in a
// correct terminal state, and counters that add up. Run under -race
// (CI does) this doubles as the data-race check for the shared
// queue/pool/stream machinery.
func TestEngineMixedKindsStress(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s := New(Config{Logger: obs.Nop(), SimWorkers: 2, MaxConcurrentJobs: 3})
	specs := []JobSpec{
		{Circuit: "c17", Mode: "nodrop", Patterns: PatternSpec{Random: &RandomSpec{N: 192, Seed: 1}}},
		{Circuit: "c17", Mode: "drop", Patterns: PatternSpec{Random: &RandomSpec{N: 192, Seed: 2}}},
		{Circuit: "lion", Mode: "ndetect", N: 4, Patterns: PatternSpec{Random: &RandomSpec{N: 256, Seed: 3}}},
		{Kind: KindAtpg, Circuit: "c17", Patterns: PatternSpec{Random: &RandomSpec{N: 128, Seed: 4}}, Order: &OrderSpec{Kind: "dynm"}},
		{Kind: KindAtpg, Circuit: "lion", Patterns: PatternSpec{Random: &RandomSpec{N: 128, Seed: 5}}, Order: &OrderSpec{Kind: "orig"}, Gen: &GenSpec{FillSeed: 6}},
		{Kind: KindADIOrder, Circuit: "c17", Patterns: PatternSpec{Random: &RandomSpec{N: 128, Seed: 7}}, Order: &OrderSpec{Kind: "0dynm"}},
		{Kind: KindADIOrder, Circuit: "lion", Patterns: PatternSpec{Random: &RandomSpec{N: 128, Seed: 8}}, Order: &OrderSpec{Kind: "incr0"}},
	}

	const submitters = 4
	const perSubmitter = 8
	var (
		mu  sync.Mutex
		ids []string
	)
	var wg sync.WaitGroup
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perSubmitter; i++ {
				spec := specs[rng.Intn(len(specs))]
				id, err := s.Submit(spec)
				if err != nil {
					t.Errorf("submit: %v", err)
					continue
				}
				mu.Lock()
				ids = append(ids, id)
				mu.Unlock()

				// A third of the jobs get a subscriber that drains its
				// feed; a third get cancelled at a random point.
				switch rng.Intn(3) {
				case 0:
					if ch, cancel, ok := s.Subscribe(id); ok {
						wg.Add(1)
						go func() {
							defer wg.Done()
							defer cancel()
							for range ch {
							}
						}()
					}
				case 1:
					delay := time.Duration(rng.Intn(3)) * time.Millisecond
					wg.Add(1)
					go func(id string) {
						defer wg.Done()
						time.Sleep(delay)
						s.Cancel(id)
					}(id)
				}
			}
		}(w)
	}
	wg.Wait()

	// Drain is the final act: it must terminate every remaining job
	// and return. A deadlock anywhere in the engine shows up as this
	// test timing out.
	s.Drain()

	if _, err := s.Submit(specs[0]); err != ErrDraining {
		t.Fatalf("Submit after Drain = %v, want ErrDraining", err)
	}

	var done, failed, cancelled uint64
	for _, id := range ids {
		st, ok := s.Status(id)
		if !ok {
			// Evicted finished jobs are legal; they were terminal.
			continue
		}
		switch st.State {
		case StateDone:
			done++
			if v, err := s.ResultAny(id); err != nil || v == nil {
				t.Errorf("done job %s has no result: %v", id, err)
			} else {
				switch st.Kind {
				case KindGrade:
					if _, ok := v.(*JobResult); !ok {
						t.Errorf("grade job %s result is %T", id, v)
					}
				case KindAtpg:
					if _, ok := v.(*AtpgResult); !ok {
						t.Errorf("atpg job %s result is %T", id, v)
					}
				case KindADIOrder:
					if _, ok := v.(*OrderResult); !ok {
						t.Errorf("adi_order job %s result is %T", id, v)
					}
				}
			}
		case StateFailed:
			failed++
			t.Errorf("job %s failed: %s", id, st.Error)
		case StateCancelled:
			cancelled++
		default:
			t.Errorf("job %s left in non-terminal state %q after Drain", id, st.State)
		}
	}
	stats := s.Stats()
	if stats.JobsSubmitted != uint64(len(ids)) {
		t.Errorf("submitted counter %d, submitted %d jobs", stats.JobsSubmitted, len(ids))
	}
	if got := stats.JobsDone + stats.JobsFailed + stats.JobsCancelled; got != stats.JobsSubmitted {
		t.Errorf("counters leak jobs: done %d + failed %d + cancelled %d != submitted %d",
			stats.JobsDone, stats.JobsFailed, stats.JobsCancelled, stats.JobsSubmitted)
	}
	if stats.JobsRunning != 0 || stats.JobsQueued != 0 {
		t.Errorf("%d running, %d queued after Drain", stats.JobsRunning, stats.JobsQueued)
	}

	// The /metrics exposition must reconcile with the Stats snapshot
	// after the dust settles: both views are fed by the same terminal
	// transitions, so any drift means a path that updates one and not
	// the other (the original motivation for funneling every terminal
	// path through one helper).
	text := scrapeText(t, s)
	if got := metricValue(t, text, "adifo_jobs_submitted_total"); got != float64(stats.JobsSubmitted) {
		t.Errorf("metric jobs_submitted %v != stats %d", got, stats.JobsSubmitted)
	}
	terminal := stats.JobsDone + stats.JobsFailed + stats.JobsCancelled
	if got := metricValue(t, text, "adifo_jobs_total"); got != float64(terminal) {
		t.Errorf("metric jobs_total %v != stats terminal sum %d", got, terminal)
	}
	for series, want := range map[string]float64{
		`adifo_jobs_queued`:  0,
		`adifo_jobs_running`: 0,
		`adifo_draining`:     1,
	} {
		if got := metricValue(t, text, series); got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
	byStatus := map[string]uint64{
		StateDone: stats.JobsDone, StateFailed: stats.JobsFailed, StateCancelled: stats.JobsCancelled,
	}
	for status, want := range byStatus {
		got := 0.0
		for _, kind := range KindNames() {
			got += metricValue(t, text,
				`adifo_jobs_total{kind="`+kind+`",status="`+status+`"}`)
		}
		if got != float64(want) {
			t.Errorf("metric jobs_total status=%s sums to %v, stats say %d", status, got, want)
		}
	}
	t.Logf("stress: %d done, %d failed, %d cancelled of %d", done, failed, cancelled, len(ids))

	// Goroutine leak check: everything the engine spawned must be
	// gone. Allow the runtime a moment to retire exiting goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d now vs %d at start\n%s",
				runtime.NumGoroutine(), baseline, fmt.Sprintf("%.3000s", buf[:n]))
		}
		time.Sleep(10 * time.Millisecond)
	}
}
