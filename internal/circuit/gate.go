// Package circuit implements the gate-level combinational netlist that
// every other subsystem (fault model, simulators, ATPG, generators)
// operates on.
//
// A Circuit is a DAG of gates. Primary inputs are modelled as gates of
// type PI with no fanin, so that every signal in the design is simply
// "the output of gate i"; this uniform view keeps fault sites, value
// arrays and event queues indexable by a single integer.
//
// Full-scan handling: the .bench reader converts sequential designs to
// their combinational core the same way the paper does — every DFF
// output becomes a pseudo primary input and every DFF data input
// becomes a pseudo primary output. After parsing there are no state
// elements left; the rest of the library only ever sees combinational
// circuits.
package circuit

import (
	"fmt"

	"github.com/eda-go/adifo/internal/logic"
)

// GateType enumerates the primitive cell library. It matches the
// operator set of the ISCAS-89 .bench format.
type GateType uint8

// Supported gate types. PI is the pseudo-gate type for primary inputs
// (including scan pseudo-inputs produced from DFFs).
const (
	PI GateType = iota
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
	numGateTypes
)

var gateNames = [...]string{
	PI:   "INPUT",
	Buf:  "BUFF",
	Not:  "NOT",
	And:  "AND",
	Nand: "NAND",
	Or:   "OR",
	Nor:  "NOR",
	Xor:  "XOR",
	Xnor: "XNOR",
}

// String returns the .bench spelling of the gate type.
func (t GateType) String() string {
	if int(t) < len(gateNames) {
		return gateNames[t]
	}
	return fmt.Sprintf("GateType(%d)", uint8(t))
}

// Inverting reports whether the gate complements its "natural"
// function (NAND vs AND, NOR vs OR, NOT vs BUF, XNOR vs XOR). The
// backtrace in PODEM uses this to flip objective values through a
// gate.
func (t GateType) Inverting() bool {
	switch t {
	case Not, Nand, Nor, Xnor:
		return true
	}
	return false
}

// ControllingValue returns the controlling input value of the gate
// type and whether one exists. A controlling value on any input fixes
// the output regardless of the remaining inputs (0 for AND/NAND, 1
// for OR/NOR). XOR-family and single-input gates have none.
func (t GateType) ControllingValue() (v logic.V3, ok bool) {
	switch t {
	case And, Nand:
		return logic.Zero, true
	case Or, Nor:
		return logic.One, true
	}
	return logic.X, false
}

// OutputOnControl returns the gate output value produced when some
// input carries the controlling value. Only meaningful when
// ControllingValue reports ok.
func (t GateType) OutputOnControl() logic.V3 {
	switch t {
	case And:
		return logic.Zero
	case Nand:
		return logic.One
	case Or:
		return logic.One
	case Nor:
		return logic.Zero
	}
	return logic.X
}

// MinFanin returns the minimum legal fanin count for the type.
func (t GateType) MinFanin() int {
	switch t {
	case PI:
		return 0
	case Buf, Not:
		return 1
	default:
		return 2
	}
}

// MaxFanin returns the maximum legal fanin count (0 meaning
// unbounded).
func (t GateType) MaxFanin() int {
	switch t {
	case PI:
		return 0
	case Buf, Not:
		return 1
	default:
		return 0
	}
}

// Gate is one node of the netlist. Fanin holds gate indices in input
// pin order; the order matters because fault sites are addressed as
// (gate, pin).
type Gate struct {
	Name  string
	Type  GateType
	Fanin []int
}

// EvalWord evaluates the gate function over bit-parallel two-valued
// words, one bit per test pattern. in must contain one word per fanin
// pin.
func EvalWord(t GateType, in []uint64) uint64 {
	switch t {
	case Buf:
		return in[0]
	case Not:
		return ^in[0]
	case And, Nand:
		v := in[0]
		for _, w := range in[1:] {
			v &= w
		}
		if t == Nand {
			v = ^v
		}
		return v
	case Or, Nor:
		v := in[0]
		for _, w := range in[1:] {
			v |= w
		}
		if t == Nor {
			v = ^v
		}
		return v
	case Xor, Xnor:
		v := in[0]
		for _, w := range in[1:] {
			v ^= w
		}
		if t == Xnor {
			v = ^v
		}
		return v
	}
	panic(fmt.Sprintf("circuit: EvalWord on %v", t))
}

// EvalV3 evaluates the gate function over three-valued inputs. It
// implements the optimistic (ternary) semantics used by PODEM:
// a controlling binary input decides the output even when other
// inputs are X.
func EvalV3(t GateType, in []logic.V3) logic.V3 {
	switch t {
	case Buf:
		return in[0]
	case Not:
		return in[0].Not()
	case And, Nand:
		v := logic.One
		for _, x := range in {
			v = logic.And3(v, x)
			if v == logic.Zero {
				break
			}
		}
		if t == Nand {
			v = v.Not()
		}
		return v
	case Or, Nor:
		v := logic.Zero
		for _, x := range in {
			v = logic.Or3(v, x)
			if v == logic.One {
				break
			}
		}
		if t == Nor {
			v = v.Not()
		}
		return v
	case Xor, Xnor:
		v := logic.Zero
		for _, x := range in {
			v = logic.Xor3(v, x)
			if v == logic.X {
				return logic.X
			}
		}
		if t == Xnor {
			v = v.Not()
		}
		return v
	}
	panic(fmt.Sprintf("circuit: EvalV3 on %v", t))
}
