package adi

import (
	"testing"

	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/fsim"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/prng"
)

const c17Bench = `
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

func c17Index(t testing.TB) *Index {
	t.Helper()
	c, err := circuit.ParseBenchString("c17", c17Bench)
	if err != nil {
		t.Fatal(err)
	}
	fl := fault.CollapsedUniverse(c)
	u := logic.ExhaustivePatterns(c.NumInputs())
	return Compute(fl, u)
}

func TestADIAgainstIndependentRecomputation(t *testing.T) {
	ix := c17Index(t)
	c := ix.List.Circuit
	// Recompute D(f) and ndet(u) fault by fault, vector by vector,
	// with the single-shot simulator — an independent code path.
	nf, nu := ix.List.Len(), ix.U.Len()
	det := make([][]bool, nf)
	ndet := make([]int, nu)
	for fi := range det {
		det[fi] = make([]bool, nu)
		for u := 0; u < nu; u++ {
			if fsim.Detects(c, ix.List.Faults[fi], ix.U.Get(u)) {
				det[fi][u] = true
				ndet[u]++
			}
		}
	}
	for u := 0; u < nu; u++ {
		if ix.Ndet[u] != ndet[u] {
			t.Fatalf("ndet(%d) = %d, reference %d", u, ix.Ndet[u], ndet[u])
		}
	}
	for fi := 0; fi < nf; fi++ {
		want := 0
		for u := 0; u < nu; u++ {
			if det[fi][u] && (want == 0 || ndet[u] < want) {
				want = ndet[u]
			}
		}
		if ix.ADI[fi] != want {
			t.Fatalf("ADI[%d] = %d, reference %d", fi, ix.ADI[fi], want)
		}
	}
}

func TestADIBasicInvariants(t *testing.T) {
	ix := c17Index(t)
	for fi, a := range ix.ADI {
		if ix.DetectedByU(fi) && a < 1 {
			t.Fatalf("detected fault %d has ADI %d < 1", fi, a)
		}
		if !ix.DetectedByU(fi) && a != 0 {
			t.Fatalf("undetected fault %d has ADI %d != 0", fi, a)
		}
	}
	mn, mx := ix.MinMax()
	if mn < 1 || mx < mn {
		t.Fatalf("MinMax = %d, %d", mn, mx)
	}
	if r := ix.Ratio(); r < 1 {
		t.Fatalf("Ratio = %v", r)
	}
}

func TestOrdersArePermutations(t *testing.T) {
	ix := c17Index(t)
	n := ix.List.Len()
	for _, kind := range AllOrders() {
		ord := ix.Order(kind)
		if len(ord) != n {
			t.Fatalf("%v: length %d, want %d", kind, len(ord), n)
		}
		seen := make([]bool, n)
		for _, fi := range ord {
			if fi < 0 || fi >= n || seen[fi] {
				t.Fatalf("%v is not a permutation: %v", kind, ord)
			}
			seen[fi] = true
		}
	}
}

func TestOrigIsIdentity(t *testing.T) {
	ix := c17Index(t)
	for i, fi := range ix.Order(Orig) {
		if fi != i {
			t.Fatal("orig order must be the identity")
		}
	}
}

func TestDecrMonotonicity(t *testing.T) {
	ix := c17Index(t)
	ord := ix.Order(Decr)
	for i := 1; i < len(ord); i++ {
		a, b := ix.ADI[ord[i-1]], ix.ADI[ord[i]]
		if a < b {
			t.Fatalf("Decr not non-increasing at %d: %d then %d", i, a, b)
		}
	}
	// Ties broken by fault index.
	for i := 1; i < len(ord); i++ {
		if ix.ADI[ord[i-1]] == ix.ADI[ord[i]] && ix.ADI[ord[i]] > 0 && ord[i-1] > ord[i] {
			t.Fatalf("Decr tie not broken by index at %d", i)
		}
	}
}

func TestIncr0Monotonicity(t *testing.T) {
	ix := c17Index(t)
	ord := ix.Order(Incr0)
	// Nonzero prefix increasing, zeros (if any) at the end.
	seenZero := false
	prev := 0
	for _, fi := range ord {
		a := ix.ADI[fi]
		if a == 0 {
			seenZero = true
			continue
		}
		if seenZero {
			t.Fatal("nonzero ADI after zero block in Incr0")
		}
		if a < prev {
			t.Fatalf("Incr0 not non-decreasing: %d after %d", a, prev)
		}
		prev = a
	}
}

func TestZeroBlockPlacement(t *testing.T) {
	// Use a random subset of vectors so that some faults stay
	// undetected (ADI = 0).
	c, err := circuit.ParseBenchString("c17", c17Bench)
	if err != nil {
		t.Fatal(err)
	}
	fl := fault.CollapsedUniverse(c)
	u := logic.RandomPatterns(c.NumInputs(), 3, prng.New(2))
	ix := Compute(fl, u)

	zeros := 0
	for fi := range ix.ADI {
		if !ix.DetectedByU(fi) {
			zeros++
		}
	}
	if zeros == 0 {
		t.Skip("seed produced full coverage; zero-block test not applicable")
	}
	for _, kind := range []OrderKind{Decr, Dynm, Incr0} {
		ord := ix.Order(kind)
		for _, fi := range ord[len(ord)-zeros:] {
			if ix.DetectedByU(fi) {
				t.Fatalf("%v: zero-ADI block not at the end", kind)
			}
		}
	}
	for _, kind := range []OrderKind{Decr0, Dynm0} {
		ord := ix.Order(kind)
		for _, fi := range ord[:zeros] {
			if ix.DetectedByU(fi) {
				t.Fatalf("%v: zero-ADI block not at the beginning", kind)
			}
		}
	}
}

// naiveDynamicOrder is the O(n^2 |U|) reference implementation of the
// paper's dynamic ordering process.
func naiveDynamicOrder(ix *Index, faults []int) []int {
	ndet := append([]int(nil), ix.Ndet...)
	placed := make(map[int]bool)
	var out []int
	for len(out) < len(faults) {
		best, bestADI := -1, -1
		for _, fi := range faults {
			if placed[fi] {
				continue
			}
			cur := 0
			ix.Det[fi].ForEach(func(u int) {
				if cur == 0 || ndet[u] < cur {
					cur = ndet[u]
				}
			})
			if cur > bestADI || (cur == bestADI && best >= 0 && fi < best) {
				best, bestADI = fi, cur
			}
		}
		out = append(out, best)
		placed[best] = true
		ix.Det[best].ForEach(func(u int) { ndet[u]-- })
	}
	return out
}

func TestDynamicOrderMatchesNaive(t *testing.T) {
	ix := c17Index(t)
	nz, _ := ix.split()
	want := naiveDynamicOrder(ix, nz)
	got := ix.dynamicOrder(nz)
	if len(got) != len(want) {
		t.Fatalf("length mismatch: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dynamic order differs at %d: heap %v, naive %v", i, got[i], want[i])
		}
	}
}

func TestDynamicOrderMatchesNaiveRandomSubsets(t *testing.T) {
	c, err := circuit.ParseBenchString("c17", c17Bench)
	if err != nil {
		t.Fatal(err)
	}
	fl := fault.CollapsedUniverse(c)
	for seed := uint64(1); seed <= 5; seed++ {
		u := logic.RandomPatterns(c.NumInputs(), 8, prng.New(seed))
		ix := Compute(fl, u)
		nz, _ := ix.split()
		want := naiveDynamicOrder(ix, nz)
		got := ix.dynamicOrder(nz)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: dynamic order differs at %d", seed, i)
			}
		}
	}
}

func TestDynamicFirstPickIsGlobalMax(t *testing.T) {
	ix := c17Index(t)
	ord := ix.Order(Dynm)
	first := ord[0]
	for fi, a := range ix.ADI {
		if a > ix.ADI[first] {
			t.Fatalf("fault %d has higher static ADI than the first dynamic pick", fi)
		}
	}
}

func TestFromResultRequiresNoDrop(t *testing.T) {
	c, err := circuit.ParseBenchString("c17", c17Bench)
	if err != nil {
		t.Fatal(err)
	}
	fl := fault.CollapsedUniverse(c)
	u := logic.ExhaustivePatterns(c.NumInputs())
	res := fsim.Run(fl, u, fsim.Options{Mode: fsim.Drop})
	defer func() {
		if recover() == nil {
			t.Fatal("FromResult on Drop-mode result did not panic")
		}
	}()
	FromResult(res, u)
}

func TestOrderKindStrings(t *testing.T) {
	want := map[OrderKind]string{
		Orig: "orig", Incr0: "incr0", Decr: "decr",
		Decr0: "0decr", Dynm: "dynm", Dynm0: "0dynm",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if OrderKind(42).String() == "" {
		t.Fatal("unknown kind must render")
	}
}

func TestNumDetected(t *testing.T) {
	ix := c17Index(t)
	// Exhaustive patterns detect every detectable fault of c17 — all
	// 22 collapsed faults are detectable.
	if ix.NumDetected() != 22 {
		t.Fatalf("NumDetected = %d, want 22", ix.NumDetected())
	}
}

func TestMaxHeapOrdering(t *testing.T) {
	h := newMaxHeap(0)
	h.push(entry{key: 3, fault: 5})
	h.push(entry{key: 7, fault: 9})
	h.push(entry{key: 7, fault: 2})
	h.push(entry{key: 1, fault: 0})
	want := []entry{{7, 2}, {7, 9}, {3, 5}, {1, 0}}
	for i, w := range want {
		got := h.pop()
		if got != w {
			t.Fatalf("pop %d = %+v, want %+v", i, got, w)
		}
	}
	if h.len() != 0 {
		t.Fatal("heap not empty")
	}
}

func BenchmarkDynamicOrderC17(b *testing.B) {
	ix := c17Index(b)
	nz, _ := ix.split()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.dynamicOrder(nz)
	}
}

func TestComputeNDetectInvariants(t *testing.T) {
	c, err := circuit.ParseBenchString("c17", c17Bench)
	if err != nil {
		t.Fatal(err)
	}
	fl := fault.CollapsedUniverse(c)
	u := logic.ExhaustivePatterns(c.NumInputs())
	full := Compute(fl, u)
	const n = 3
	nd := ComputeNDetect(fl, u, n)

	for fi := range fl.Faults {
		if nd.Det[fi].Count() > n {
			t.Fatalf("fault %d: |D_ndetect| = %d > n", fi, nd.Det[fi].Count())
		}
		// D_ndetect(f) ⊆ D_full(f).
		nd.Det[fi].ForEach(func(uIdx int) {
			if !full.Det[fi].Test(uIdx) {
				t.Fatalf("fault %d: vector %d in truncated set but not in full set", fi, uIdx)
			}
		})
		if full.DetectedByU(fi) != nd.DetectedByU(fi) {
			t.Fatalf("fault %d: detection status differs", fi)
		}
		if nd.DetectedByU(fi) && nd.ADI[fi] < 1 {
			t.Fatalf("fault %d: n-detect ADI %d < 1", fi, nd.ADI[fi])
		}
	}
	for uIdx := range nd.Ndet {
		if nd.Ndet[uIdx] > full.Ndet[uIdx] {
			t.Fatalf("ndet_ndetect(%d) = %d exceeds full %d", uIdx, nd.Ndet[uIdx], full.Ndet[uIdx])
		}
	}
	// All six orders still work on the estimated index.
	for _, kind := range AllOrders() {
		ord := nd.Order(kind)
		if len(ord) != fl.Len() {
			t.Fatalf("%v order truncated", kind)
		}
	}
}
